"""The simulated Ethernet segment, NICs, and lightweight remote hosts.

The paper's testbed had the Scout/Linux machine plus remote hosts (the
MPEG source, the ``ping -f`` sender) on one Ethernet.  Here:

* :class:`EtherSegment` is the shared 10 Mb/s medium: serialization time,
  propagation latency, optional jitter, broadcast;
* :class:`NetDevice` is the NIC of the machine under test — every frame
  delivery raises a CPU **interrupt** on that machine's virtual CPU, which
  is where the two kernels start to differ;
* :class:`HostAgent` is a remote host that is *not* CPU-modeled (the
  paper's load generators were separate machines); it reacts to frames
  after a fixed service delay.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from .. import params
from ..sim.cpu import CPU
from ..sim.engine import Engine
from .addresses import EthAddr, IpAddr


class EtherSegment:
    """A shared broadcast medium with finite bandwidth.

    Frames serialize onto the wire one at a time (a global busy pointer
    bounds aggregate throughput at the configured bandwidth); delivery
    happens after serialization + propagation latency + jitter.
    """

    def __init__(self, engine: Engine,
                 bandwidth_mbps: float = params.ETH_BANDWIDTH_MBPS,
                 latency_us: float = params.ETH_LINK_LATENCY_US,
                 jitter_us: float = 0.0,
                 loss_rate: float = 0.0,
                 rng: Optional[np.random.Generator] = None):
        if bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss rate must be in [0, 1)")
        self.engine = engine
        self.bandwidth_mbps = bandwidth_mbps
        self.latency_us = latency_us
        self.jitter_us = jitter_us
        #: Fraction of frames silently lost in transit (failure injection
        #: for the ordered-but-unreliable MFLOW/decoder behaviour).
        self.loss_rate = loss_rate
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._endpoints: Dict[EthAddr, "Endpoint"] = {}
        self._wire_free_at = 0.0
        self._last_arrival = 0.0
        # statistics
        self.frames_carried = 0
        self.bytes_carried = 0
        self.frames_lost = 0

    def attach(self, endpoint: "Endpoint") -> None:
        if endpoint.mac in self._endpoints:
            raise ValueError(f"duplicate MAC on segment: {endpoint.mac}")
        self._endpoints[endpoint.mac] = endpoint
        endpoint.segment = self

    def endpoints(self) -> List["Endpoint"]:
        return list(self._endpoints.values())

    def serialization_us(self, nbytes: int) -> float:
        """Wire time for *nbytes* at the segment bandwidth."""
        return (nbytes * 8) / self.bandwidth_mbps  # Mb/s == bits/us

    def transmit(self, frame: bytes, src: EthAddr) -> float:
        """Put *frame* on the wire; returns the delivery time.

        The destination is read from the frame's first six bytes;
        broadcast frames go to every endpoint except the sender.
        """
        if len(frame) < 14:
            raise ValueError(f"runt frame ({len(frame)} bytes)")
        dst = EthAddr(frame[:6])
        start = max(self.engine.now, self._wire_free_at)
        end = start + self.serialization_us(len(frame))
        self._wire_free_at = end
        if self.loss_rate and float(self.rng.random()) < self.loss_rate:
            self.frames_lost += 1
            return end  # the wire time was spent; the frame was not
        arrival = end + self.latency_us
        if self.jitter_us > 0:
            # Jitter models queueing delay, which is FIFO: it never
            # reorders frames (a shared Ethernet does not reorder).
            arrival += float(self.rng.uniform(0, self.jitter_us))
            arrival = max(arrival, self._last_arrival + 1e-6)
            self._last_arrival = arrival
        self.frames_carried += 1
        self.bytes_carried += len(frame)
        if dst.is_broadcast:
            for mac, endpoint in self._endpoints.items():
                if mac != src:
                    self.engine.schedule_at(arrival, endpoint.receive, frame)
        else:
            endpoint = self._endpoints.get(dst)
            if endpoint is not None:
                self.engine.schedule_at(arrival, endpoint.receive, frame)
            # Frames to unknown MACs vanish, as on a real wire.
        return arrival


class Endpoint:
    """Anything attachable to a segment: has a MAC, receives frames."""

    def __init__(self, mac: EthAddr):
        self.mac = EthAddr(mac)
        self.segment: Optional[EtherSegment] = None

    def send(self, frame: bytes) -> None:
        if self.segment is None:
            raise RuntimeError(f"{self!r} is not attached to a segment")
        self.segment.transmit(frame, self.mac)

    def receive(self, frame: bytes) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class NetDevice(Endpoint):
    """The NIC of the machine under test.

    Frame arrival raises an interrupt on the machine's CPU: the IRQ
    overhead is stolen from whatever the CPU was doing, and the kernel's
    ``rx_handler`` runs at interrupt level (this is where Scout classifies
    and Linux does its softirq work).
    """

    def __init__(self, mac: EthAddr, cpu: CPU, name: str = "eth0",
                 irq_us: float = params.IRQ_OVERHEAD_US):
        super().__init__(mac)
        self.cpu = cpu
        self.name = name
        self.irq_us = irq_us
        self.rx_handler: Optional[Callable[[bytes], None]] = None
        # statistics
        self.rx_frames = 0
        self.tx_frames = 0
        self.rx_missed = 0

    def receive(self, frame: bytes) -> None:
        self.rx_frames += 1
        if self.rx_handler is None:
            self.rx_missed += 1
            return
        self.cpu.interrupt(self.irq_us, self.rx_handler, frame)

    def send(self, frame: bytes) -> None:
        self.tx_frames += 1
        super().send(frame)

    def __repr__(self) -> str:
        return f"<NetDevice {self.name} {self.mac} rx={self.rx_frames}>"


class HostAgent(Endpoint):
    """A remote host that reacts to frames after a service delay.

    Subclasses override :meth:`handle_frame`.  The host filters on its own
    MAC/broadcast, like a real non-promiscuous adapter.
    """

    def __init__(self, engine: Engine, mac: EthAddr, ip: IpAddr,
                 service_us: float = params.REMOTE_HOST_SERVICE_US):
        super().__init__(mac)
        self.engine = engine
        self.ip = IpAddr(ip)
        self.service_us = service_us
        self.frames_seen = 0

    def receive(self, frame: bytes) -> None:
        dst = EthAddr(frame[:6])
        if dst != self.mac and not dst.is_broadcast:
            return
        self.frames_seen += 1
        self.engine.schedule(self.service_us, self.handle_frame, frame)

    def handle_frame(self, frame: bytes) -> None:  # pragma: no cover - abstract
        raise NotImplementedError
