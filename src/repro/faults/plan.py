"""Fault plans: seeded, named descriptions of what goes wrong.

A :class:`FaultPlan` is pure data — which link faults to inject at what
rates, which stages misbehave and when, which queues get pressure storms —
plus its own seed.  Injectors (:mod:`repro.faults.link`,
:mod:`repro.faults.stagefault`) consume the plan; because every random
decision is drawn from the plan's own generator, two runs of the same
experiment with the same plan are byte-identical, independent of any other
randomness in the world.

Named profiles (``profile("drop10_reorder")``) give experiments and
benchmarks a shared vocabulary of failure conditions.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

import numpy as np


@dataclass(frozen=True)
class LinkFaults:
    """Per-frame fault rates on the wire (each in [0, 1))."""

    #: Fraction of frames silently discarded in transit.
    drop_rate: float = 0.0
    #: Fraction of frames delivered twice.
    duplicate_rate: float = 0.0
    #: Fraction of frames with payload bytes flipped in transit.
    corrupt_rate: float = 0.0
    #: Fraction of frames held back for ``delay_us`` before transmission.
    delay_rate: float = 0.0
    delay_us: float = 2_000.0
    #: Fraction of frames held so the *following* frame overtakes them.
    reorder_rate: float = 0.0
    #: A held frame is force-flushed after this long even if nothing
    #: overtakes it (so the stream's tail is never stuck).
    reorder_flush_us: float = 5_000.0

    @property
    def any_active(self) -> bool:
        return any((self.drop_rate, self.duplicate_rate, self.corrupt_rate,
                    self.delay_rate, self.reorder_rate))


@dataclass(frozen=True)
class StageFault:
    """One misbehaving router stage on a path.

    ``mode`` is one of:

    * ``"crash"`` — the deliver function raises (contained by the
      PA_FAULT_ISOLATION transform when the path requested it);
    * ``"stall"`` — the deliver function silently swallows messages
      without any drop note: the failure mode the watchdog exists for;
    * ``"slowdown"`` — delivery still works but charges ``extra_us`` of
      additional CPU per message.
    """

    router: str
    mode: str = "crash"
    #: Virtual-time window during which the fault is active.
    start_us: float = 0.0
    duration_us: float = float("inf")
    #: Extra per-message CPU for ``slowdown``.
    extra_us: float = 500.0

    def __post_init__(self) -> None:
        if self.mode not in ("crash", "stall", "slowdown"):
            raise ValueError(f"unknown stage fault mode {self.mode!r}")

    def active_at(self, now_us: float) -> bool:
        return self.start_us <= now_us < self.start_us + self.duration_us


@dataclass(frozen=True)
class QueueStorm:
    """A queue-pressure storm: one path queue's capacity is clamped for a
    window of virtual time, forcing overflow behaviour deterministically
    (rather than hoping offered load happens to exceed service rate)."""

    #: Queue role index into ``path.q`` (FWD_IN=0, FWD_OUT=1, BWD_IN=2,
    #: BWD_OUT=3 — import the names from :mod:`repro.core.queues`).
    queue_role: int
    start_us: float
    duration_us: float
    #: Capacity during the storm (the pre-storm maxlen is restored after).
    clamp_len: int = 1


@dataclass(frozen=True)
class AdversarySpec:
    """A worst-case traffic adversary, pure data.

    The model is the rate-:math:`\\rho`, burst-window-:math:`w` adversary
    of *Source Routing and Scheduling in Packet Networks* (PAPERS.md): in
    any interval of length :math:`T` the adversary may inject at most
    :math:`\\rho T + w` messages, but it controls *when* within that
    envelope, which flows the messages belong to, and (for EDF targets)
    what deadlines they carry.  ``strategy`` names one of the built-in
    attack shapes in :mod:`repro.faults.adversary`; every random decision
    the strategy makes draws from the owning plan's generator.
    """

    #: Strategy registry key (see ``repro.faults.adversary.STRATEGIES``).
    strategy: str = "deadline_cliff"
    #: Sustained injection rate, messages per virtual microsecond.
    rho_per_us: float = 0.02
    #: Burst allowance: extra messages injectable in any window.
    w: int = 16
    #: Injection horizon in virtual time.
    duration_us: float = 120_000.0
    #: Distinct flow identities the adversary cycles through.
    flows: int = 4
    #: Payload size of injected messages.
    payload_bytes: int = 64

    def __post_init__(self) -> None:
        if self.rho_per_us <= 0:
            raise ValueError("rho_per_us must be positive")
        if self.w < 1:
            raise ValueError("burst window w must be at least 1")
        if self.duration_us <= 0:
            raise ValueError("duration_us must be positive")
        if self.flows < 1:
            raise ValueError("need at least one flow")


@dataclass(frozen=True)
class FaultPlan:
    """Everything an experiment injects, with its own seed."""

    name: str = "none"
    seed: int = 0
    link: LinkFaults = field(default_factory=LinkFaults)
    stage_faults: Tuple[StageFault, ...] = ()
    storms: Tuple[QueueStorm, ...] = ()
    adversary: Optional[AdversarySpec] = None

    def rng(self) -> np.random.Generator:
        """A fresh generator over this plan's seed: injection decisions
        replay identically run after run."""
        return np.random.default_rng(self.seed)

    def with_seed(self, seed: int) -> "FaultPlan":
        return replace(self, seed=seed)


# ---------------------------------------------------------------------------
# Named profiles
# ---------------------------------------------------------------------------

PROFILES = {
    "none": FaultPlan(name="none"),
    "drop10": FaultPlan(name="drop10", link=LinkFaults(drop_rate=0.10)),
    "reorder": FaultPlan(name="reorder", link=LinkFaults(reorder_rate=0.20)),
    "drop10_reorder": FaultPlan(
        name="drop10_reorder",
        link=LinkFaults(drop_rate=0.10, reorder_rate=0.20)),
    "lossy": FaultPlan(
        name="lossy",
        link=LinkFaults(drop_rate=0.15, duplicate_rate=0.05,
                        corrupt_rate=0.05, delay_rate=0.10,
                        reorder_rate=0.10)),
    "dup5": FaultPlan(name="dup5", link=LinkFaults(duplicate_rate=0.05)),
    "corrupt5": FaultPlan(name="corrupt5",
                          link=LinkFaults(corrupt_rate=0.05)),
}

#: Adversarial-traffic profiles: one per built-in strategy, overloading
#: a 40 us/message service point (mu = 0.025 msgs/us) at rho = 0.04 so
#: the backpressure and ledger machinery is genuinely exercised.
for _strategy in ("deadline_cliff", "stride_starve", "cache_thrash",
                  "queue_storm", "group_chaser"):
    PROFILES[f"adv_{_strategy}"] = FaultPlan(
        name=f"adv_{_strategy}",
        adversary=AdversarySpec(strategy=_strategy, rho_per_us=0.04, w=24))
del _strategy


def profile(name: str, seed: Optional[int] = None) -> FaultPlan:
    """Look up a named profile, optionally re-seeded."""
    try:
        plan = PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise KeyError(f"unknown fault profile {name!r} (known: {known})") \
            from None
    return plan if seed is None else plan.with_seed(seed)


def profile_names() -> List[str]:
    return sorted(PROFILES)
