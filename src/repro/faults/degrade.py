"""Graceful degradation: trade quality for survival under fault pressure.

The paper's Section 4.4 knob — "the user may request that only every
third image be displayed", enforced by dropping the skipped frames at the
adapter before any CPU is spent on them — becomes a *feedback loop* here:
a governor watches a video path's input-queue occupancy and drop counters
and turns the kernel's early-discard modulus up under pressure, back down
when the path is healthy again.

The governor only ever touches :meth:`ScoutKernel.set_frame_skip`, i.e.
the same adapter-level filter the static configuration uses; the path
itself is untouched.  Optionally a :class:`~repro.admission.CpuAdmission`
model supplies a floor: if admission already says the stream only fits at
every-Nth quality, the governor never degrades below that N.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..core.path import DELETED, Path
from ..core.stage import BWD


class DegradationGovernor:
    """Closed-loop early-discard control for one video path.

    Parameters
    ----------
    engine:
        Simulation engine for the sampling timer.
    kernel:
        The :class:`~repro.kernel.ScoutKernel` owning the early-discard
        filters.
    path:
        The video path to govern.
    check_interval_us:
        Sampling period (virtual time).
    high_occupancy / low_occupancy:
        Input-queue fill fractions that trigger escalation / permit
        de-escalation.
    drop_threshold:
        New drops per sampling period that count as pressure even when
        occupancy looks fine.
    max_skip:
        Harshest degradation (keep every ``max_skip``-th frame).
    healthy_checks:
        Consecutive calm samples required before easing one step back.
    observatory:
        Optional :class:`~repro.observe.Observatory`; when supplied every
        escalation / de-escalation is recorded as an incident and the
        current skip level and occupancy are published as gauges.
    """

    def __init__(self, engine, kernel, path: Path,
                 check_interval_us: float = 100_000.0,
                 high_occupancy: float = 0.75,
                 low_occupancy: float = 0.25,
                 drop_threshold: int = 4,
                 max_skip: int = 8,
                 healthy_checks: int = 3,
                 admission=None, profile=None, fps: Optional[float] = None,
                 observatory=None, pressure_fn=None):
        self.engine = engine
        self.kernel = kernel
        self.path = path
        self.observatory = observatory
        #: Optional external pressure signal (``() -> bool``), e.g. a
        #: :class:`~repro.admission.BackpressureShedder`'s ``shedding``
        #: flag: backpressure from bottleneck queues elsewhere in the
        #: system escalates degradation even while this path's own input
        #: queue still looks calm.
        self.pressure_fn = pressure_fn
        self.check_interval_us = check_interval_us
        self.high_occupancy = high_occupancy
        self.low_occupancy = low_occupancy
        self.drop_threshold = drop_threshold
        self.max_skip = max_skip
        self.healthy_checks = healthy_checks
        self.admission = admission
        self.profile = profile
        self.fps = fps
        self._timer = None
        self._running = False
        self._last_drops = self._pressure_drops()
        self._calm_streak = 0
        # accounting
        self.escalations = 0
        self.deescalations = 0
        self.events: List[Dict[str, Any]] = []

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> "DegradationGovernor":
        if not self._running:
            self._running = True
            self._timer = self.engine.schedule(self.check_interval_us,
                                               self._check)
        return self

    def stop(self) -> None:
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # -- the control loop ---------------------------------------------------------

    @property
    def skip(self) -> int:
        return self.kernel.frame_skip(self.path)

    def _pressure_drops(self) -> int:
        """Drops that indicate pressure.  Early discards are excluded:
        they are the governor's *own* medicine, and counting them would
        lock the loop at maximum degradation (skip -> discard drops ->
        "pressure" -> skip)."""
        stats = self.path.stats
        return stats.drops - stats.drop_reasons.get("early_discard", 0)

    def _admission_floor(self) -> int:
        """Quality level admission control already mandates (1 = none)."""
        if self.admission is None or self.profile is None:
            return 1
        fps = self.fps if self.fps is not None else self.profile.fps
        suggested = self.admission.suggest_skip(self.profile, fps,
                                                max_skip=self.max_skip)
        return suggested if suggested is not None else self.max_skip

    def _check(self) -> None:
        self._timer = None
        if not self._running or self.path.state == DELETED:
            return
        inq = self.path.input_queue(BWD)
        occupancy = 0.0 if not inq.maxlen else len(inq) / inq.maxlen
        drops = self._pressure_drops()
        new_drops = drops - self._last_drops
        self._last_drops = drops
        external = bool(self.pressure_fn()) if self.pressure_fn else False
        pressured = (occupancy >= self.high_occupancy
                     or new_drops >= self.drop_threshold
                     or external)
        calm = (occupancy <= self.low_occupancy and new_drops == 0
                and not external)
        if pressured:
            self._calm_streak = 0
            self._escalate(occupancy, new_drops)
        elif calm:
            self._calm_streak += 1
            if self._calm_streak >= self.healthy_checks:
                self._calm_streak = 0
                self._deescalate(occupancy)
        else:
            self._calm_streak = 0
        if self.observatory is not None:
            # Published after the decision so the gauge shows the skip
            # level now in force, not the one just replaced.
            alias = self.observatory.recorder.alias_for(self.path)
            self.observatory.metrics.gauge("governor_skip",
                                           path=alias).set(self.skip)
            self.observatory.metrics.gauge("governor_inq_occupancy",
                                           path=alias).set(occupancy)
        self._timer = self.engine.schedule(self.check_interval_us,
                                           self._check)

    def _escalate(self, occupancy: float, new_drops: int) -> None:
        current = self.skip
        if current >= self.max_skip:
            return
        target = min(max(current * 2, self._admission_floor()),
                     self.max_skip)
        if target == current:
            return
        self.kernel.set_frame_skip(self.path, target)
        self.escalations += 1
        self.events.append({"type": "escalate", "time_us": self.engine.now,
                            "skip": target, "occupancy": occupancy,
                            "new_drops": new_drops})
        if self.observatory is not None:
            self.observatory.incident(
                "governor_escalate", path=self.path,
                detail=f"skip={target} occupancy={occupancy:.2f} "
                       f"new_drops={new_drops}")

    def _deescalate(self, occupancy: float) -> None:
        current = self.skip
        floor = self._admission_floor()
        if current <= floor:
            return
        target = max(current // 2, floor)
        self.kernel.set_frame_skip(self.path, target)
        self.deescalations += 1
        self.events.append({"type": "deescalate", "time_us": self.engine.now,
                            "skip": target, "occupancy": occupancy})
        if self.observatory is not None:
            self.observatory.incident(
                "governor_deescalate", path=self.path,
                detail=f"skip={target} occupancy={occupancy:.2f}")

    def __repr__(self) -> str:
        return (f"<DegradationGovernor path#{self.path.pid} skip={self.skip} "
                f"up={self.escalations} down={self.deescalations}>")
