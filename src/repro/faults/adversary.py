"""Adversarial traffic: worst-case arrivals with machine-checked verdicts.

The chaos layer (:mod:`repro.faults.link`, :mod:`repro.faults.stagefault`)
exercises *random* misbehaviour; this module exercises *worst-case*
behaviour.  The model is the rate-:math:`\\rho`, burst-window-:math:`w`
adversary of *Source Routing and Scheduling in Packet Networks*
(PAPERS.md): an injector that may place at most :math:`\\rho T + w`
messages in any interval of length :math:`T`, but controls exactly when
within that envelope, which flows they belong to, and what deadlines they
carry.  Strategies use that freedom to target specific mechanisms:

* ``deadline_cliff``  — bursts whose messages share one imminent
  deadline, so the EDF heap fills with ties that all expire together;
* ``stride_starve``   — a maximal back-to-back train on one flow, the
  load shape that starves competing policies unless the stride scheduler
  really enforces its shares;
* ``cache_thrash``    — every message a fresh flow key cycling one past
  the flow cache's capacity: the LRU's provably worst reference string;
* ``queue_storm``     — bursts phase-locked to the consumer's drain
  period, holding the bottleneck queue at peak amplitude;
* ``group_chaser``    — feedback attack on ``least_loaded`` dispatch: at
  injection time it targets whichever group member the policy is about
  to favor, chasing the re-dispatch decision to induce oscillation.

Two guarantees hold *by construction*:

* the :class:`ArrivalEnvelope` clamps every strategy, however malicious,
  to the :math:`(\\rho, w)` arrival curve — a strategy can only choose
  *where inside the envelope* its messages land;
* every injected message is serialized into a :class:`DropLedger` and
  must reach exactly one terminal state (delivered, shed, or dropped
  under a named category); the :class:`VerdictEngine` reconciles the
  ledger and turns a run into a :class:`StabilityVerdict` — bounded
  queue depth, no starved flow within the horizon, zero ledger leaks —
  the machine-checked proof artifact ``bench_adversary.py`` records.
"""

from __future__ import annotations

import hashlib
import math
from typing import Any, Callable, Dict, List, NamedTuple, Optional, Tuple

import numpy as np

from .plan import AdversarySpec

#: Ledger category for a successfully consumed message.
DELIVERED = "delivered"
#: Ledger category for a message shed by backpressure admission.
BACKPRESSURE_SHED = "backpressure_shed"
#: Ledger category for an adversarial arrival rejected by a full input
#: queue — distinct from the generic ``inq_overflow`` so adversarial load
#: never hides inside ordinary traffic accounting.
ADVERSARY_OVERFLOW = "adversary_overflow"
#: Ledger category for messages still queued when the run ends.
END_OF_RUN = "end_of_run"


# ---------------------------------------------------------------------------
# The (rho, w) envelope
# ---------------------------------------------------------------------------


class ArrivalEnvelope:
    """Token-bucket clamp enforcing the :math:`(\\rho, w)` arrival curve.

    Capacity ``w`` tokens, refill rate ``rho_per_us``, one token per
    grant: for any interval :math:`(t_1, t_2]` the number of granted
    injections is at most :math:`\\rho (t_2 - t_1) + w`.  Strategies
    *request* injection instants; :meth:`grant` returns the earliest
    conforming time at or after the request, so no strategy — however
    adversarial — can exceed the curve.
    """

    def __init__(self, rho_per_us: float, w: int):
        if rho_per_us <= 0:
            raise ValueError("rho_per_us must be positive")
        if w < 1:
            raise ValueError("w must be at least 1")
        self.rho = float(rho_per_us)
        self.w = int(w)
        self._tokens = float(w)
        self._clock = 0.0
        self.granted = 0
        self.deferred = 0

    def grant(self, desired_us: float) -> float:
        """Consume one token; return the actual (conforming) time."""
        when = max(desired_us, self._clock)
        tokens = min(float(self.w),
                     self._tokens + (when - self._clock) * self.rho)
        if tokens < 1.0:
            when += (1.0 - tokens) / self.rho
            tokens = 1.0
            self.deferred += 1
        self._tokens = tokens - 1.0
        self._clock = when
        self.granted += 1
        return when


def closed_form_depth_bound(rho_per_us: float, w: int,
                            service_us: float) -> Optional[int]:
    """Worst-case backlog of a work-conserving, batch-draining server fed
    by a :math:`(\\rho, w)` source, or ``None`` when the source exceeds
    service capacity.

    With utilization :math:`u = \\rho \\cdot c` (service time :math:`c`),
    a batch of :math:`n` messages busies the server for :math:`n c`,
    during which at most :math:`u n + w` new messages arrive; the
    recurrence :math:`n' = u n + w` has fixed point :math:`w / (1 - u)`,
    so the queue observed just before any batch drain never exceeds
    :math:`\\lceil w / (1 - u) \\rceil` (+1 for the arrival that triggers
    the observation).  DESIGN.md §14 derives this in full.
    """
    utilization = rho_per_us * service_us
    if utilization >= 1.0:
        return None
    return math.ceil(w / (1.0 - utilization)) + 1


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


class TargetView:
    """Live feedback a strategy may read at injection time.

    Everything here is state the system already exposes — queue depths,
    cache capacity, the service-time constant — packaged behind callables
    so strategies stay decoupled from the harness that built the target.
    """

    def __init__(self, now: Callable[[], float],
                 member_depths: Callable[[], List[Tuple[int, int]]],
                 flow_on_member: Callable[[int], Optional[int]],
                 service_us: float, drain_period_us: float,
                 cache_capacity: int):
        self.now = now
        #: ``() -> [(pid, bottleneck depth)]`` over live group members.
        self.member_depths = member_depths
        #: ``(pid) -> flow`` currently pinned/affine to that member.
        self.flow_on_member = flow_on_member
        self.service_us = service_us
        self.drain_period_us = drain_period_us
        self.cache_capacity = cache_capacity


class AdversaryStrategy:
    """Base strategy: paced decisions about *when* (:meth:`next_delay`)
    and, at the granted instant, *what* (:meth:`choose`)."""

    name = "base"

    def __init__(self, spec: AdversarySpec, rng: np.random.Generator):
        self.spec = spec
        self.rng = rng

    def next_delay(self, view: TargetView) -> float:
        """Desired gap (us) from the previous arrival to the next one.
        The envelope may defer the request; strategies must not rely on
        getting the exact instant they asked for."""
        raise NotImplementedError

    def choose(self, view: TargetView) -> Tuple[int, Optional[float]]:
        """``(flow, deadline_us)`` for the arrival being injected now."""
        raise NotImplementedError


class DeadlineCliffStrategy(AdversaryStrategy):
    """EDF attack: quiet refill gaps, then bursts of ``w`` messages that
    all share one imminent absolute deadline (the cliff), so the EDF
    heap fills with ties that expire together."""

    name = "deadline_cliff"

    def __init__(self, spec: AdversarySpec, rng: np.random.Generator):
        super().__init__(spec, rng)
        self._in_burst = 0
        self._cliff_us: Optional[float] = None
        self._flow = 0

    def next_delay(self, view: TargetView) -> float:
        if self._in_burst > 0:
            self._in_burst -= 1
            return 0.0
        self._in_burst = self.spec.w - 1
        self._cliff_us = None
        # Refill gap: long enough for the bucket to recover the burst,
        # jittered so bursts never lock to the watchdog's check phase.
        refill = self.spec.w / self.spec.rho_per_us
        return refill * (1.0 + 0.25 * float(self.rng.random()))

    def choose(self, view: TargetView) -> Tuple[int, Optional[float]]:
        if self._cliff_us is None:
            self._cliff_us = view.now() + 2.0 * view.service_us
        self._flow = (self._flow + 1) % self.spec.flows
        return self._flow, self._cliff_us


class StrideStarvationStrategy(AdversaryStrategy):
    """Stride attack: a maximal back-to-back train on a single flow —
    after the initial burst the envelope paces it at exactly rho, the
    densest sustained load the adversary may offer.  Competing policies
    survive only if the stride scheduler's shares actually bite."""

    name = "stride_starve"

    def next_delay(self, view: TargetView) -> float:
        return 0.0  # the envelope does the pacing

    def choose(self, view: TargetView) -> Tuple[int, Optional[float]]:
        return 0, None


class CacheThrashStrategy(AdversaryStrategy):
    """Flow-cache attack: a steady train whose flow key rotates over
    ``capacity + 1`` distinct identities — the canonical worst reference
    string for an LRU, so every probe misses and every insert evicts."""

    name = "cache_thrash"

    def __init__(self, spec: AdversarySpec, rng: np.random.Generator):
        super().__init__(spec, rng)
        self._counter = 0

    def next_delay(self, view: TargetView) -> float:
        return 1.0 / self.spec.rho_per_us

    def choose(self, view: TargetView) -> Tuple[int, Optional[float]]:
        self._counter += 1
        return self._counter % (view.cache_capacity + 1), None


class QueueStormStrategy(AdversaryStrategy):
    """Queue attack: bursts of ``w`` phase-locked to the consumer's
    drain period, so each burst lands exactly as the previous one has
    drained and the bottleneck queue rides at peak amplitude."""

    name = "queue_storm"

    def __init__(self, spec: AdversarySpec, rng: np.random.Generator):
        super().__init__(spec, rng)
        self._in_burst = 0
        self._flow = 0

    def next_delay(self, view: TargetView) -> float:
        if self._in_burst > 0:
            self._in_burst -= 1
            return 0.0
        self._in_burst = self.spec.w - 1
        # Phase lock: the time the service point needs to drain one
        # burst, floored by the envelope's own refill time.
        drain = self.spec.w * view.service_us
        refill = self.spec.w / self.spec.rho_per_us
        return max(drain, refill)

    def choose(self, view: TargetView) -> Tuple[int, Optional[float]]:
        self._flow = (self._flow + 1) % self.spec.flows
        return self._flow, None


class GroupChaserStrategy(AdversaryStrategy):
    """Multipath attack: at each injection, target whichever member the
    ``least_loaded`` policy is about to favor — reuse a flow already
    affine to it when one exists, otherwise spend a fresh flow the
    policy will place there.  The load chases the re-dispatch decision,
    flipping the minimum every few messages to induce oscillation."""

    name = "group_chaser"

    def __init__(self, spec: AdversarySpec, rng: np.random.Generator):
        super().__init__(spec, rng)
        self._fresh = 0

    def next_delay(self, view: TargetView) -> float:
        return 0.5 / self.spec.rho_per_us  # ask faster than sustainable

    def choose(self, view: TargetView) -> Tuple[int, Optional[float]]:
        depths = view.member_depths()
        if depths:
            target_pid = min(depths, key=lambda item: item[1])[0]
            pinned = view.flow_on_member(target_pid)
            if pinned is not None:
                return pinned, None
        self._fresh += 1
        return self.spec.flows + self._fresh, None


#: strategy name -> class, for spec-driven construction.
STRATEGIES: Dict[str, type] = {
    cls.name: cls for cls in (
        DeadlineCliffStrategy, StrideStarvationStrategy, CacheThrashStrategy,
        QueueStormStrategy, GroupChaserStrategy,
    )
}


def make_strategy(spec: AdversarySpec,
                  rng: np.random.Generator) -> AdversaryStrategy:
    cls = STRATEGIES.get(spec.strategy)
    if cls is None:
        raise ValueError(f"unknown adversary strategy {spec.strategy!r}; "
                         f"known: {sorted(STRATEGIES)}")
    return cls(spec, rng)


# ---------------------------------------------------------------------------
# The injector
# ---------------------------------------------------------------------------


class ArrivalEvent(NamedTuple):
    """One adversarial arrival, as granted by the envelope."""

    serial: int
    time_us: float
    flow: int
    deadline_us: Optional[float]


class AdversaryInjector:
    """Runs a strategy inside the simulation.

    The injector is a self-rescheduling engine callback chain: each
    firing asks the strategy what to inject *now* (so feedback
    strategies see live state), hands the :class:`ArrivalEvent` to the
    harness-supplied ``inject`` callable, then asks the strategy when it
    wants the next arrival and pushes that request through the envelope.
    All randomness comes from the generator passed in — drawn from the
    owning :class:`~repro.faults.plan.FaultPlan` — so two runs with the
    same plan produce byte-identical schedules.
    """

    def __init__(self, engine, spec: AdversarySpec,
                 rng: np.random.Generator,
                 inject: Callable[[ArrivalEvent], None],
                 view: TargetView):
        self.engine = engine
        self.spec = spec
        self.strategy = make_strategy(spec, rng)
        self.envelope = ArrivalEnvelope(spec.rho_per_us, spec.w)
        self.inject = inject
        self.view = view
        self.schedule: List[ArrivalEvent] = []
        self.injected = 0
        self.done = False

    def start(self) -> "AdversaryInjector":
        self._arm(self.engine.now)
        return self

    def _arm(self, previous_us: float) -> None:
        desired = previous_us + self.strategy.next_delay(self.view)
        granted = self.envelope.grant(desired)
        if granted > self.spec.duration_us:
            self.done = True
            return
        self.engine.schedule(max(0.0, granted - self.engine.now), self._fire)

    def _fire(self) -> None:
        now = self.engine.now
        flow, deadline = self.strategy.choose(self.view)
        event = ArrivalEvent(self.injected + 1, now, flow, deadline)
        self.injected += 1
        self.schedule.append(event)
        self.inject(event)
        self._arm(now)

    def schedule_digest(self) -> str:
        """SHA-256 over the granted schedule — the determinism witness
        the seed-propagation audit compares across same-seed runs."""
        h = hashlib.sha256()
        for event in self.schedule:
            deadline = "-" if event.deadline_us is None \
                else f"{event.deadline_us:.3f}"
            h.update(f"{event.serial}:{event.time_us:.3f}:"
                     f"{event.flow}:{deadline};".encode())
        return h.hexdigest()

    def assert_envelope(self) -> None:
        """Verify (sliding window, exact) that the granted schedule never
        exceeded ``rho * T + w`` in any interval — the property test's
        independent check on the envelope implementation."""
        times = [event.time_us for event in self.schedule]
        for start_index, start in enumerate(times):
            for end_index in range(start_index, len(times)):
                span = times[end_index] - start
                count = end_index - start_index + 1
                allowed = self.spec.rho_per_us * span + self.spec.w
                if count > allowed + 1e-9:
                    raise AssertionError(
                        f"envelope violated: {count} arrivals in "
                        f"{span:.1f}us (allowed {allowed:.2f})")


# ---------------------------------------------------------------------------
# The ledger and the verdict engine
# ---------------------------------------------------------------------------


class DropLedger:
    """Exact message accounting: every serial reaches one terminal state.

    ``inject`` opens a serial; ``account`` closes it under a category
    (:data:`DELIVERED`, :data:`BACKPRESSURE_SHED`, a drop category...).
    Closing a serial twice is recorded as a double count, never silently
    merged; serials still open at reconciliation are leaks.  The verdict
    is only ``ok`` when both lists are empty and the category counts sum
    exactly to the injection count.
    """

    def __init__(self) -> None:
        # Serials are opaque hashables: plain ints for a single kernel,
        # ``(shard_id, serial)`` tuples in a merged fabric ledger.
        self._state: Dict[Any, Optional[str]] = {}
        self.double_counted: List[Tuple[Any, str, str]] = []

    def inject(self, serial) -> None:
        if serial in self._state:
            raise ValueError(f"serial {serial} injected twice")
        self._state[serial] = None

    def account(self, serial, category: str) -> None:
        previous = self._state.get(serial)
        if previous is not None:
            self.double_counted.append((serial, previous, category))
            return
        if serial not in self._state:
            raise ValueError(f"serial {serial} accounted before injection")
        self._state[serial] = category

    @property
    def injected(self) -> int:
        return len(self._state)

    def leaks(self) -> List[int]:
        return sorted(serial for serial, cat in self._state.items()
                      if cat is None)

    def counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for category in self._state.values():
            if category is not None:
                counts[category] = counts.get(category, 0) + 1
        return counts

    def count(self, category: str) -> int:
        return self.counts().get(category, 0)

    def fates(self) -> Dict[Any, Optional[str]]:
        """Snapshot of every serial's terminal state (``None`` = open)."""
        return dict(self._state)

    @classmethod
    def merge(cls, ledgers: Dict[Any, "DropLedger"]) -> "DropLedger":
        """Merge per-shard ledgers into one fabric-level ledger.

        Every serial is namespaced as ``(shard_id, serial)`` — two
        shards may both have a serial 7 and the merged ledger can never
        alias them into one another, so cross-shard reconciliation keeps
        the exactly-once guarantee the per-shard ledgers provide
        (DESIGN.md §17).  Leaks and double counts survive the merge under
        their namespaced serials; injected totals add exactly.
        """
        merged = cls()
        for shard_id in sorted(ledgers):
            ledger = ledgers[shard_id]
            for serial, category in ledger._state.items():
                merged._state[(shard_id, serial)] = category
            for serial, previous, category in ledger.double_counted:
                merged.double_counted.append(
                    ((shard_id, serial), previous, category))
        return merged


class StabilityVerdict(NamedTuple):
    """The machine-checked outcome of one adversarial run."""

    strategy: str
    scheduler: str
    seed: int
    injected: int
    # bounded queues
    max_queue_depth: int
    depth_bound: int
    queue_capacity: int
    bounded_ok: bool
    # no starvation
    starved_flows: int
    worst_progress_gap_us: float
    horizon_us: float
    starvation_ok: bool
    # ledger reconciliation
    ledger: Dict[str, int]
    leaked: int
    double_counted: int
    ledger_ok: bool

    @property
    def ok(self) -> bool:
        return self.bounded_ok and self.starvation_ok and self.ledger_ok

    def render(self) -> str:
        """Deterministic text form (feeds the run digest)."""
        ledger = " ".join(f"{k}={v}" for k, v in sorted(self.ledger.items()))
        return (f"verdict[{self.strategy}/{self.scheduler}/seed{self.seed}] "
                f"injected={self.injected} "
                f"depth={self.max_queue_depth}<=bound{self.depth_bound}"
                f"(cap{self.queue_capacity}):"
                f"{'ok' if self.bounded_ok else 'VIOLATED'} "
                f"starved={self.starved_flows} "
                f"worst_gap={self.worst_progress_gap_us:.0f}us"
                f"<=h{self.horizon_us:.0f}:"
                f"{'ok' if self.starvation_ok else 'VIOLATED'} "
                f"ledger[{ledger}] leaks={self.leaked} "
                f"dup={self.double_counted}:"
                f"{'ok' if self.ledger_ok else 'VIOLATED'}")


class VerdictEngine:
    """Turns a finished run's raw observations into a verdict.

    Parameters
    ----------
    queues:
        Every :class:`~repro.core.queues.PathQueue` the run touched; the
        sup-over-time depth is each queue's ``high_watermark`` (bounded
        queues are checked against the tightest applicable bound, the
        caller-supplied ``depth_bound``).
    ledger:
        The run's :class:`DropLedger`.
    starvation:
        An object exposing ``starved_flows()`` and
        ``worst_gap_us`` / ``horizon_us`` (the
        :class:`~repro.observe.StarvationDetector`).
    """

    def __init__(self, queues, ledger: DropLedger, starvation,
                 depth_bound: int, queue_capacity: int):
        self.queues = list(queues)
        self.ledger = ledger
        self.starvation = starvation
        self.depth_bound = depth_bound
        self.queue_capacity = queue_capacity

    def max_depth(self) -> int:
        return max((q.high_watermark for q in self.queues), default=0)

    def verdict(self, strategy: str, scheduler: str,
                seed: int) -> StabilityVerdict:
        max_depth = self.max_depth()
        counts = self.ledger.counts()
        leaks = self.ledger.leaks()
        accounted = sum(counts.values())
        ledger_ok = (not leaks and not self.ledger.double_counted
                     and accounted == self.ledger.injected)
        starved = self.starvation.starved_flows()
        return StabilityVerdict(
            strategy=strategy,
            scheduler=scheduler,
            seed=seed,
            injected=self.ledger.injected,
            max_queue_depth=max_depth,
            depth_bound=self.depth_bound,
            queue_capacity=self.queue_capacity,
            bounded_ok=max_depth <= self.depth_bound,
            starved_flows=len(starved),
            worst_progress_gap_us=self.starvation.worst_gap_us,
            horizon_us=self.starvation.horizon_us,
            starvation_ok=not starved,
            ledger=counts,
            leaked=len(leaks),
            double_counted=len(self.ledger.double_counted),
            ledger_ok=ledger_ok,
        )
