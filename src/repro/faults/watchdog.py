"""The path watchdog: detect stalled paths, tear down, rebuild, back off.

Paths make Scout's failure unit explicit: when one path stops producing,
everything needed to replace it — the invariants it was created with —
is recorded in its attribute set, so recovery is "run ``path_create``
again with the same attributes".  The watchdog automates exactly that
loop:

* **heartbeat** — every check interval it samples the path's
  :meth:`~repro.core.path.Path.progress_signature` (output-queue deposits
  plus explicit progress marks) and
  :meth:`~repro.core.path.Path.demand_signature` (input-queue arrivals).
  Work arriving while output stays flat for longer than the stall budget
  is the signature of a hung stage — drops do not count as progress, so a
  path shedding everything it receives is also flagged;
* **repair** — the stalled path is deleted (freeing its queues and port
  bindings) and the caller-supplied ``rebuild`` callback creates its
  replacement, after an exponential backoff that doubles on every
  consecutive repair that fails to restore progress;
* **accounting** — every detection and repair is appended to
  :attr:`events` with virtual timestamps, and the recovery latency
  (detection to first post-rebuild progress) is measured per incident —
  the number ``benchmarks/bench_fault_recovery.py`` reports.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from .. import params
from ..core.path import DELETED, Path


class PathWatchdog:
    """Virtual-time liveness monitor and repairer for one path.

    Parameters
    ----------
    engine:
        The simulation engine heartbeats run on.
    path:
        The path to watch initially.
    rebuild:
        Zero-argument callable returning a replacement :class:`Path`
        (typically closing over ``path_create`` plus the original
        attributes and whatever thread-spawning the kernel needs).  May
        raise; a failed rebuild retries with further backoff.
    observatory:
        Optional :class:`~repro.observe.Observatory`; when supplied every
        stall / rebuild / recovery is recorded as an incident span and
        recovery latencies feed a histogram, alongside :attr:`events`.
    """

    def __init__(self, engine, path: Path,
                 rebuild: Callable[[], Path],
                 check_interval_us: float = params.WATCHDOG_CHECK_INTERVAL_US,
                 stall_budget_us: float = params.WATCHDOG_STALL_BUDGET_US,
                 backoff_base_us: float = params.WATCHDOG_BACKOFF_BASE_US,
                 backoff_max_us: float = params.WATCHDOG_BACKOFF_MAX_US,
                 observatory=None, flow_cache=None, group=None, pool=None,
                 overload_check: Optional[Callable[[], bool]] = None,
                 min_rebuild_interval_us: Optional[float] = None):
        self.engine = engine
        self.path = path
        self.rebuild = rebuild
        self.observatory = observatory
        #: Optional overload discriminator (e.g. a
        #: :class:`~repro.admission.BackpressureShedder`'s ``shedding``
        #: flag).  A flat progress signature with this returning True is
        #: *overload*, not a stall: adversarial arrival phase can starve
        #: a healthy path of output without any stage being hung, and
        #: tearing it down would only amplify the attack.  The watchdog
        #: then defers (resetting its stall clock) instead of rebuilding
        #: and leaves relief to admission/degradation.
        self.overload_check = overload_check
        #: Hard floor between consecutive rebuilds: however the stall
        #: clock is provoked, the watchdog will not tear the path down
        #: again within this window of the previous rebuild — crafted
        #: arrival phase cannot turn the repair loop into a rebuild
        #: storm.  Defaults to a multiple of the stall budget so the
        #: guard scales with the configured detection timescale.
        #: (Backoff still applies on top for *failed* repairs.)
        self.min_rebuild_interval_us = (
            min_rebuild_interval_us if min_rebuild_interval_us is not None
            else params.WATCHDOG_MIN_REBUILD_FACTOR * stall_budget_us)
        #: Optional :class:`~repro.core.flowcache.FlowCache` to purge on
        #: every stall.  ``Path.delete`` already invalidates the caches a
        #: path is registered with; this covers a cache the stalled path
        #: never reached (e.g. it stalled before its first packet).
        self.flow_cache = flow_cache
        #: Optional :class:`~repro.multipath.PathGroup` the watched path
        #: belongs to: a rebuilt replacement is enrolled automatically,
        #: so group capacity survives watchdog repairs (the stalled
        #: member removes *itself* via its delete hook).
        self.group = group
        #: Optional :class:`~repro.multipath.PathPool`: a stalled path is
        #: reported via ``pool.discard`` so a wedged path can never be
        #: parked and handed out again.
        self.pool = pool
        self.check_interval_us = check_interval_us
        self.stall_budget_us = stall_budget_us
        self.backoff_base_us = backoff_base_us
        self.backoff_max_us = backoff_max_us
        self._timer = None
        self._running = False
        # heartbeat state
        self._last_progress = path.progress_signature()
        self._demand_at_progress = path.demand_signature()
        self._flat_since: Optional[float] = None
        # repair state
        self._consecutive_repairs = 0
        self._stall_detected_at: Optional[float] = None
        self._awaiting_recovery = False
        self._last_rebuild_at: Optional[float] = None
        # accounting
        self.stalls_detected = 0
        self.overload_deferrals = 0
        self.rebuilds_suppressed = 0
        self.rebuilds = 0
        self.rebuild_failures = 0
        self.recovery_latencies_us: List[float] = []
        #: Chronological record of everything the watchdog did.
        self.events: List[Dict[str, Any]] = []

    # -- lifecycle -------------------------------------------------------------

    def start(self) -> "PathWatchdog":
        if self._running:
            return self
        self._running = True
        self._schedule_check(self.check_interval_us)
        return self

    def stop(self) -> None:
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    # -- heartbeat -----------------------------------------------------------------

    def _schedule_check(self, delay_us: float) -> None:
        if self._running:
            self._timer = self.engine.schedule(delay_us, self._check)

    def _check(self) -> None:
        self._timer = None
        if not self._running:
            return
        path = self.path
        if path.state == DELETED:
            # Deleted behind our back (e.g. stop_video): go dormant until
            # someone swaps in a new path via adopt().
            self._schedule_check(self.check_interval_us)
            return
        progress = path.progress_signature()
        demand = path.demand_signature()
        if progress > self._last_progress:
            self._note_progress(progress, demand)
        elif demand > self._demand_at_progress:
            # Demand advanced, progress flat: the stall clock runs.
            if self._flat_since is None:
                self._flat_since = self.engine.now
            elif self.engine.now - self._flat_since >= self.stall_budget_us:
                if self.overload_check is not None and self.overload_check():
                    # Overload, not a stall: defer to admission /
                    # degradation and restart the stall clock.
                    self.overload_deferrals += 1
                    self._flat_since = None
                    self.events.append({"type": "overload_deferred",
                                        "time_us": self.engine.now,
                                        "pid": path.pid})
                    self._incident("watchdog_overload_deferred",
                                   f"demand={demand} progress={progress}")
                elif (self._last_rebuild_at is not None
                      and self.engine.now - self._last_rebuild_at
                      < self.min_rebuild_interval_us):
                    # Inside the rebuild cool-down: crafted arrival phase
                    # cannot provoke a rebuild storm.  Keep the stall
                    # clock running; if it is a real stall it survives
                    # the cool-down and is repaired then.
                    self.rebuilds_suppressed += 1
                else:
                    self._on_stall(progress, demand)
                    return  # _repair schedules the next check itself
        self._schedule_check(self.check_interval_us)

    def _note_progress(self, progress: int, demand: int) -> None:
        self._last_progress = progress
        self._demand_at_progress = demand
        self._flat_since = None
        if self._awaiting_recovery:
            # First output since the rebuild: the path recovered.
            self._awaiting_recovery = False
            latency = self.engine.now - self._stall_detected_at
            self.recovery_latencies_us.append(latency)
            self._consecutive_repairs = 0
            self.events.append({"type": "recovered",
                                "time_us": self.engine.now,
                                "latency_us": latency,
                                "pid": self.path.pid})
            self._incident("watchdog_recovered",
                           f"latency_us={latency:.1f}")
            if self.observatory is not None:
                self.observatory.metrics.histogram(
                    "watchdog_recovery_latency_us").observe(latency)

    # -- repair -------------------------------------------------------------------------

    def _on_stall(self, progress: int, demand: int) -> None:
        self.stalls_detected += 1
        if not self._awaiting_recovery:
            self._stall_detected_at = self.engine.now
        self.events.append({"type": "stall_detected",
                            "time_us": self.engine.now,
                            "pid": self.path.pid,
                            "progress": progress, "demand": demand})
        self._incident("watchdog_stall",
                       f"progress={progress} demand={demand}")
        backoff = min(self.backoff_base_us * (2 ** self._consecutive_repairs),
                      self.backoff_max_us)
        self._consecutive_repairs += 1
        # Messages still queued on the stalled path are casualties of the
        # repair, not of the original fault: account them under their own
        # category so recovery cost is visible (and reconcilable).
        if self.flow_cache is not None:
            self.flow_cache.invalidate_path(self.path)
        self.path.delete(drop_category="watchdog_rebuild")
        if self.pool is not None:
            # Already deleted above (keeping the drop category); discard
            # just scrubs the pool's bookkeeping so the wedged path can
            # never be re-acquired.
            self.pool.discard(self.path)
        self.engine.schedule(backoff, self._repair)

    def _repair(self) -> None:
        if not self._running:
            return
        try:
            replacement = self.rebuild()
        except Exception as exc:
            self.rebuild_failures += 1
            self.events.append({"type": "rebuild_failed",
                                "time_us": self.engine.now,
                                "error": f"{type(exc).__name__}: {exc}"})
            self._incident("watchdog_rebuild_failed",
                           f"{type(exc).__name__}: {exc}")
            backoff = min(self.backoff_base_us
                          * (2 ** self._consecutive_repairs),
                          self.backoff_max_us)
            self._consecutive_repairs += 1
            self.engine.schedule(backoff, self._repair)
            return
        self.rebuilds += 1
        self._last_rebuild_at = self.engine.now
        self.events.append({"type": "rebuilt", "time_us": self.engine.now,
                            "old_pid": self.path.pid,
                            "new_pid": replacement.pid})
        self._incident("watchdog_rebuilt",
                       f"old=#{self.path.pid} new=#{replacement.pid}")
        if self.group is not None and replacement.group is None:
            # Enroll the replacement so the group regains its capacity
            # (the stalled member already removed itself via its delete
            # hook).  A rebuild callback that enrolled it itself is left
            # alone.
            self.group.add(replacement)
        self.adopt(replacement, awaiting_recovery=True)
        self._schedule_check(self.check_interval_us)

    def adopt(self, path: Path, awaiting_recovery: bool = False) -> None:
        """Point the watchdog at a (new) path and reset its heartbeat."""
        self.path = path
        self._last_progress = path.progress_signature()
        self._demand_at_progress = path.demand_signature()
        self._flat_since = None
        self._awaiting_recovery = awaiting_recovery

    def _incident(self, label: str, detail: str) -> None:
        if self.observatory is not None:
            self.observatory.incident(label, path=self.path, detail=detail)

    # -- introspection ---------------------------------------------------------------------

    @property
    def last_recovery_latency_us(self) -> Optional[float]:
        if not self.recovery_latencies_us:
            return None
        return self.recovery_latencies_us[-1]

    def __repr__(self) -> str:
        return (f"<PathWatchdog path#{self.path.pid} "
                f"stalls={self.stalls_detected} rebuilds={self.rebuilds}>")
