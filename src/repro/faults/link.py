"""Link fault injection: a faulty wire, not a faulty stack.

:class:`FaultyLink` interposes on an :class:`EtherSegment`'s ``transmit``
so that frames are dropped, duplicated, corrupted, delayed, or reordered
*on the wire*, exactly where a real lossy segment misbehaves.  The stack
under test is untouched — its recovery machinery (TCP retransmission,
MFLOW sequencing, the path watchdog) sees honest symptoms.

All decisions come from the fault plan's seeded generator, so a given
(plan, workload) pair replays byte-identically.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from .plan import FaultPlan, LinkFaults

#: Header bytes never corrupted: ETH(14) + IP(20).  Corrupting addressing
#: would turn a corruption fault into a misdelivery fault; flipping bytes
#: from the transport header onward models checksum-detectable damage.
_CORRUPT_OFFSET = 34


class FaultyLink:
    """Wraps one segment's ``transmit`` with seeded fault injection.

    Use as a context manager or call :meth:`install` / :meth:`uninstall`::

        with FaultyLink(segment, plan) as link:
            ... run the experiment ...
        print(link.dropped, link.reordered)
    """

    def __init__(self, segment, plan: FaultPlan,
                 faults: Optional[LinkFaults] = None):
        self.segment = segment
        self.engine = segment.engine
        self.faults = faults if faults is not None else plan.link
        self.rng = plan.rng()
        self._original = None
        #: A frame held back for reordering: (frame, src, flush event).
        self._held: Optional[Tuple[bytes, object, object]] = None
        # statistics
        self.frames_seen = 0
        self.dropped = 0
        self.duplicated = 0
        self.corrupted = 0
        self.delayed = 0
        self.reordered = 0
        self.flushed = 0

    # -- lifecycle -----------------------------------------------------------

    def install(self) -> "FaultyLink":
        if self._original is not None:
            raise RuntimeError("FaultyLink already installed")
        self._original = self.segment.transmit
        self.segment.transmit = self._transmit
        return self

    def uninstall(self) -> None:
        if self._original is None:
            return
        self._flush_held()
        self.segment.transmit = self._original
        self._original = None

    def __enter__(self) -> "FaultyLink":
        return self.install()

    def __exit__(self, *exc) -> None:
        self.uninstall()

    # -- the faulty wire ---------------------------------------------------------

    def _transmit(self, frame: bytes, src) -> float:
        self.frames_seen += 1
        faults = self.faults
        # A frame being transmitted overtakes any held frame: send the new
        # one first, then release the held one — an adjacent swap.
        release = self._take_held()

        result = self.engine.now
        if faults.drop_rate and self._roll(faults.drop_rate):
            self.dropped += 1
        else:
            if faults.corrupt_rate and self._roll(faults.corrupt_rate):
                frame = self._corrupt(frame)
            if faults.reorder_rate and release is None \
                    and self._roll(faults.reorder_rate):
                self._hold(frame, src)
            elif faults.delay_rate and self._roll(faults.delay_rate):
                self.delayed += 1
                self.engine.schedule(faults.delay_us, self._original,
                                     frame, src)
            else:
                result = self._original(frame, src)
                if faults.duplicate_rate and self._roll(faults.duplicate_rate):
                    self.duplicated += 1
                    self._original(frame, src)
        if release is not None:
            held_frame, held_src = release
            self.reordered += 1
            self._original(held_frame, held_src)
        return result

    def _roll(self, rate: float) -> bool:
        return float(self.rng.random()) < rate

    def _corrupt(self, frame: bytes) -> bytes:
        if len(frame) <= _CORRUPT_OFFSET:
            return frame  # nothing but headers: leave it alone
        self.corrupted += 1
        index = int(self.rng.integers(_CORRUPT_OFFSET, len(frame)))
        flip = int(self.rng.integers(1, 256))
        damaged = bytearray(frame)
        damaged[index] ^= flip
        return bytes(damaged)

    # -- reorder hold/release ------------------------------------------------------

    def _hold(self, frame: bytes, src) -> None:
        event = self.engine.schedule(self.faults.reorder_flush_us,
                                     self._flush_held)
        self._held = (frame, src, event)

    def _take_held(self):
        if self._held is None:
            return None
        frame, src, event = self._held
        self._held = None
        event.cancel()
        return frame, src

    def _flush_held(self) -> None:
        """Nothing overtook the held frame in time: send it anyway."""
        release = self._take_held()
        if release is not None:
            self.flushed += 1
            self._original(*release)

    # -- introspection ---------------------------------------------------------------

    def counters(self) -> dict:
        return {
            "frames_seen": self.frames_seen,
            "dropped": self.dropped,
            "duplicated": self.duplicated,
            "corrupted": self.corrupted,
            "delayed": self.delayed,
            "reordered": self.reordered,
            "flushed": self.flushed,
        }

    def __repr__(self) -> str:
        state = "installed" if self._original is not None else "idle"
        return (f"<FaultyLink {state} seen={self.frames_seen} "
                f"dropped={self.dropped} reordered={self.reordered}>")
