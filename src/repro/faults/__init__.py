"""Fault injection and self-healing paths.

The robustness subsystem has two halves:

* **injection** — seeded, deterministic descriptions of what goes wrong
  (:mod:`repro.faults.plan`) and the machinery that makes it happen: a
  faulty wire (:mod:`repro.faults.link`), misbehaving router stages and
  queue-pressure storms (:mod:`repro.faults.stagefault`);
* **healing** — the per-path watchdog that detects stalled paths and
  rebuilds them with backoff (:mod:`repro.faults.watchdog`), and the
  degradation governor that trades video quality for survival under
  pressure (:mod:`repro.faults.degrade`).  The protocol-level healing
  (TCP retransmission, ARP request retries, IP reassembly timeouts) lives
  with the protocols in :mod:`repro.net`.

Everything injected is driven by a :class:`FaultPlan`'s own seeded
generator: the same plan and workload replay byte-identically.
"""

from .adversary import (
    ADVERSARY_OVERFLOW,
    BACKPRESSURE_SHED,
    DELIVERED,
    END_OF_RUN,
    AdversaryInjector,
    AdversaryStrategy,
    ArrivalEnvelope,
    CacheThrashStrategy,
    DeadlineCliffStrategy,
    DropLedger,
    GroupChaserStrategy,
    QueueStormStrategy,
    STRATEGIES,
    StabilityVerdict,
    StrideStarvationStrategy,
    TargetView,
    VerdictEngine,
    closed_form_depth_bound,
    make_strategy,
)
from .degrade import DegradationGovernor
from .link import FaultyLink
from .plan import (
    AdversarySpec,
    FaultPlan,
    LinkFaults,
    PROFILES,
    QueueStorm,
    StageFault,
    profile,
    profile_names,
)
from .stagefault import InjectedFault, QueueStormer, StageFaultInjector
from .watchdog import PathWatchdog

__all__ = [
    "FaultPlan", "LinkFaults", "StageFault", "QueueStorm", "AdversarySpec",
    "PROFILES", "profile", "profile_names",
    "FaultyLink", "StageFaultInjector", "QueueStormer", "InjectedFault",
    "PathWatchdog", "DegradationGovernor",
    "AdversaryInjector", "AdversaryStrategy", "ArrivalEnvelope",
    "DeadlineCliffStrategy", "StrideStarvationStrategy",
    "CacheThrashStrategy", "QueueStormStrategy", "GroupChaserStrategy",
    "STRATEGIES", "make_strategy", "TargetView",
    "DropLedger", "StabilityVerdict", "VerdictEngine",
    "closed_form_depth_bound",
    "DELIVERED", "BACKPRESSURE_SHED", "ADVERSARY_OVERFLOW", "END_OF_RUN",
]
