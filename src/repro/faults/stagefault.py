"""Stage fault injection: misbehaving router code on a live path.

Wraps a stage's deliver functions the same way transformation rules do
(the mutable function-pointer idiom of Section 3.2), so injected faults
compose with the PA_FAULT_ISOLATION containment wrapper: a ``crash`` fault
inside an isolated path is confined to the message that hit it, exactly
like a real router bug would be.

The three modes mirror the three failure shapes the self-healing
machinery must handle:

* ``crash``  — raises :class:`InjectedFault`; with fault isolation on,
  the message dies with a ``fault_isolation`` drop note;
* ``stall``  — swallows messages with *no* drop note: the path looks
  alive (demand keeps arriving) but produces nothing — the watchdog's
  detection target;
* ``slowdown`` — correct results, ``extra_us`` more CPU per message:
  pressure for the degradation governor.
"""

from __future__ import annotations

from typing import List

from ..core.stage import propagate_bracket
from ..net.common import charge
from .plan import StageFault


class InjectedFault(RuntimeError):
    """Raised by a ``crash``-mode injected fault."""


class StageFaultInjector:
    """Applies a plan's stage faults to one path.

    Faults are window-gated on virtual time (``StageFault.start_us`` /
    ``duration_us``): outside the window the original deliver function
    runs untouched, so a single injector models transient as well as
    permanent failures.
    """

    def __init__(self, engine):
        self.engine = engine
        #: (path pid, router, mode) records of every injection performed.
        self.injected: List[tuple] = []
        # statistics
        self.crashes = 0
        self.stalls = 0
        self.slowdowns = 0

    def apply(self, path, fault: StageFault) -> None:
        """Wrap both directions of the named router's stage on *path*."""
        stage = path.stage_of(fault.router)
        for direction in (0, 1):
            original = stage.deliver_fn(direction)
            if original is None:
                continue
            stage.set_deliver(direction,
                              self._wrap(original, fault))
        self.injected.append((path.pid, fault.router, fault.mode))

    def apply_plan(self, path, plan) -> None:
        """Apply every stage fault in *plan* whose router is on *path*."""
        routers = set(path.routers())
        for fault in plan.stage_faults:
            if fault.router in routers:
                self.apply(path, fault)

    def _wrap(self, original, fault: StageFault):
        engine = self.engine

        def faulty(iface, msg, direction, **kwargs):
            if not fault.active_at(engine.now):
                return original(iface, msg, direction, **kwargs)
            if fault.mode == "crash":
                self.crashes += 1
                raise InjectedFault(
                    f"injected crash in {fault.router} at {engine.now:.0f}us")
            if fault.mode == "stall":
                # Deliberately no drop note: a hung router doesn't
                # announce itself.  Only the watchdog's flat progress
                # signature gives it away.
                self.stalls += 1
                return None
            self.slowdowns += 1
            charge(msg, fault.extra_us)
            return original(iface, msg, direction, **kwargs)

        return propagate_bracket(original, faulty)


class QueueStormer:
    """Schedules a plan's queue-pressure storms against one path.

    At ``start_us`` the target queue's capacity is clamped to
    ``clamp_len`` (spilling everything beyond it into the overflow
    machinery under test); at the window's end the original capacity is
    restored.  Deterministic by construction — no randomness involved.
    """

    def __init__(self, engine):
        self.engine = engine
        self.storms_started = 0
        self.storms_ended = 0

    def apply_plan(self, path, plan) -> None:
        for storm in plan.storms:
            self.engine.schedule(
                max(0.0, storm.start_us - self.engine.now),
                self._start, path, storm)

    def _start(self, path, storm) -> None:
        from ..core.path import DELETED

        if path.state == DELETED:
            return
        queue = path.q[storm.queue_role]
        original = queue.maxlen
        queue.maxlen = storm.clamp_len
        self.storms_started += 1
        self.engine.schedule(storm.duration_us, self._end, path, queue,
                             original)

    def _end(self, path, queue, original) -> None:
        queue.maxlen = original
        self.storms_ended += 1
