"""Discrete-event engine: the virtual-time heart of the substrate.

All macro experiments (frame rates, interference, missed deadlines) run in
virtual time so results are deterministic and machine-independent.  Time is
measured in **microseconds** as a float; ties are broken by insertion
order, which keeps every run reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple


class Event:
    """A scheduled callback.  ``cancel()`` prevents it from firing."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int,
                 fn: Callable[..., Any], args: Tuple[Any, ...]):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.3f} {getattr(self.fn, '__name__', '?')} {state}>"


class Engine:
    """A deterministic event loop over virtual microseconds."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self.events_processed = 0

    # -- scheduling ------------------------------------------------------------

    def schedule(self, delay_us: float, fn: Callable[..., Any],
                 *args: Any) -> Event:
        """Run ``fn(*args)`` *delay_us* virtual microseconds from now."""
        if delay_us < 0:
            raise ValueError(f"cannot schedule {delay_us} us in the past")
        return self.schedule_at(self.now + delay_us, fn, *args)

    def schedule_at(self, time_us: float, fn: Callable[..., Any],
                    *args: Any) -> Event:
        """Run ``fn(*args)`` at absolute virtual time *time_us*."""
        if time_us < self.now:
            raise ValueError(
                f"cannot schedule at {time_us} before now ({self.now})")
        event = Event(time_us, next(self._seq), fn, args)
        heapq.heappush(self._heap, event)
        return event

    # -- running ------------------------------------------------------------------

    def peek_next_time(self) -> Optional[float]:
        """Virtual time of the next pending event, or None when drained."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Process exactly one event; returns False when none are pending."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            self.events_processed += 1
            event.fn(*event.args)
            return True
        return False

    def run_until(self, time_us: float) -> None:
        """Process every event with time <= *time_us*, then advance the
        clock to exactly *time_us*."""
        while True:
            next_time = self.peek_next_time()
            if next_time is None or next_time > time_us:
                break
            self.step()
        if time_us > self.now:
            self.now = time_us

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the event heap (bounded by *max_events* if given).

        Returns the number of events processed by this call.
        """
        processed = 0
        while max_events is None or processed < max_events:
            if not self.step():
                break
            processed += 1
        return processed

    def pending(self) -> int:
        """Number of live (non-cancelled) events still queued."""
        return sum(1 for event in self._heap if not event.cancelled)

    def __repr__(self) -> str:
        return f"<Engine now={self.now:.1f}us pending={self.pending()}>"
