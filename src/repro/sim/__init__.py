"""Virtual-time substrate: event engine, CPU model, threads, schedulers.

This package stands in for the paper's physical machine (a 300 MHz Alpha
21064).  See DESIGN.md section 2 for why each substitution preserves the
behaviour the experiments depend on.
"""

from .aio import AioExecutor, AioThread, AioWorld
from .cpu import CPU, CPU_MHZ, cycles_to_us, us_to_cycles
from .engine import Engine, Event
from .sched import EDF, FixedPriorityRR, Policy, Scheduler
from .threads import (
    BLOCKED,
    DONE,
    READY,
    RUNNING,
    YIELD,
    Compute,
    Dequeue,
    DequeueBatch,
    Enqueue,
    Op,
    SimThread,
    Sleep,
    WaitSpace,
)
from .world import POLICY_EDF, POLICY_RR, SimWorld

__all__ = [
    "Engine", "Event",
    "CPU", "CPU_MHZ", "cycles_to_us", "us_to_cycles",
    "Scheduler", "Policy", "FixedPriorityRR", "EDF",
    "SimThread", "Op", "Compute", "Dequeue", "DequeueBatch", "Enqueue", "WaitSpace",
    "Sleep", "YIELD",
    "READY", "RUNNING", "BLOCKED", "DONE",
    "SimWorld", "POLICY_RR", "POLICY_EDF",
    "AioExecutor", "AioThread", "AioWorld",
]
