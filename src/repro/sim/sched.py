"""Scheduling policies and the non-preemptive scheduler.

Section 3.4: "Scout supports an arbitrary number of scheduling policies,
and allocates a percentage of CPU time to each.  The minimum share that
each policy gets is determined by a system-tunable parameter.  Two
scheduling policies have been implemented to date: (1) fixed-priority
round-robin, and (2) earliest-deadline first (EDF)."

Both policies are implemented here, plus the share mechanism: the
scheduler picks among policies with ready threads by smallest
share-weighted virtual time (a stride-scheduler), which converges to the
configured CPU percentages whenever multiple policies compete.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from ..core.queues import PathQueue
from .cpu import CPU
from .engine import Engine
from .threads import (
    BLOCKED,
    DONE,
    READY,
    RUNNING,
    Compute,
    Dequeue,
    DequeueBatch,
    Enqueue,
    Op,
    Sleep,
    SimThread,
    ThreadBody,
    WaitSpace,
    _Yield,
)


class Policy:
    """A ready-queue discipline."""

    def add(self, thread: SimThread) -> None:
        raise NotImplementedError

    def pop(self) -> Optional[SimThread]:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError


class FixedPriorityRR(Policy):
    """Fixed-priority round-robin: strict priority between levels
    (lower number = higher priority), FIFO within a level."""

    def __init__(self, levels: int = 16):
        if levels < 1:
            raise ValueError("need at least one priority level")
        self.levels = levels
        self._queues: List[Deque[SimThread]] = [deque() for _ in range(levels)]
        self._count = 0

    def add(self, thread: SimThread) -> None:
        level = min(max(thread.priority, 0), self.levels - 1)
        self._queues[level].append(thread)
        self._count += 1

    def pop(self) -> Optional[SimThread]:
        for queue in self._queues:
            if queue:
                self._count -= 1
                return queue.popleft()
        return None

    def __len__(self) -> int:
        return self._count


class EDF(Policy):
    """Earliest-deadline-first: the policy Scout uses for realtime MPEG
    paths (Section 4.3)."""

    def __init__(self) -> None:
        self._heap: List[Any] = []
        self._seq = itertools.count()

    def add(self, thread: SimThread) -> None:
        heapq.heappush(self._heap, (thread.deadline, next(self._seq), thread))

    def pop(self) -> Optional[SimThread]:
        if not self._heap:
            return None
        _deadline, _seq, thread = heapq.heappop(self._heap)
        return thread

    def __len__(self) -> int:
        return len(self._heap)


class _PolicySlot:
    __slots__ = ("policy", "share", "vtime")

    def __init__(self, policy: Policy, share: float):
        self.policy = policy
        self.share = share
        self.vtime = 0.0  # share-weighted CPU consumed


class Scheduler:
    """The non-preemptive thread scheduler.

    One thread runs at a time; it keeps the CPU until it blocks, yields,
    or finishes.  Wakeups go through the path's ``wakeup`` callback first
    so a path can impose its scheduling requirements on the thread about
    to run on its behalf.
    """

    def __init__(self, engine: Engine, cpu: CPU):
        self.engine = engine
        self.cpu = cpu
        self._slots: Dict[str, _PolicySlot] = {}
        self.current: Optional[SimThread] = None
        self._dispatch_pending = False
        self._deq_waiters: Dict[int, Deque[SimThread]] = {}
        self._enq_waiters: Dict[int, Deque[SimThread]] = {}
        self._watched_queues: set = set()
        self.context_switches = 0
        self.threads_spawned = 0

    # -- policy management ---------------------------------------------------

    def add_policy(self, name: str, policy: Policy, share: float = 1.0) -> None:
        if share <= 0:
            raise ValueError("policy share must be positive")
        self._slots[name] = _PolicySlot(policy, share)

    def policy(self, name: str) -> Policy:
        return self._slots[name].policy

    # -- thread management ------------------------------------------------------

    def spawn(self, body: ThreadBody, name: str = "", policy: str = "rr",
              priority: int = 0, path=None) -> SimThread:
        """Create a thread and make it runnable."""
        if policy not in self._slots:
            raise KeyError(f"no scheduling policy named {policy!r}")
        thread = SimThread(body, name=name, policy=policy,
                           priority=priority, path=path)
        self.threads_spawned += 1
        self.make_runnable(thread)
        return thread

    def make_runnable(self, thread: SimThread, *, floor: bool = True) -> None:
        """Wake *thread*: run its path's wakeup callback, then enqueue it
        on its policy's ready queue."""
        if thread.state in (DONE, READY, RUNNING):
            return  # finished, already queued, or already on the CPU
        if thread.path is not None and thread.path.wakeup is not None:
            thread.path.wakeup(thread.path, thread)
        slot = self._slots[thread.policy]
        # A policy that slept must not carry stale credit: advance its
        # virtual time to the busiest competitor's so shares stay fair.
        # The RUNNING thread's slot counts as a competitor even though its
        # ready queue is momentarily empty — otherwise a policy waking
        # opposite a lone compute-bound thread keeps its stale (low)
        # virtual time and monopolizes the CPU until it catches up.
        # The floor is for policies waking from *idle* only: a yielding
        # thread's policy never left the competition, and its low virtual
        # time is earned priority, not stale credit (``floor=False``).
        if floor:
            active = [s.vtime for s in self._slots.values() if len(s.policy)]
            if self.current is not None and self.current.state == RUNNING:
                active.append(self._slots[self.current.policy].vtime)
            if active:
                slot.vtime = max(slot.vtime, min(active))
        thread.state = READY
        thread.wakeups += 1
        slot.policy.add(thread)
        self._request_dispatch()

    # -- dispatch loop ----------------------------------------------------------

    def _request_dispatch(self) -> None:
        if self._dispatch_pending or self.current is not None:
            return
        self._dispatch_pending = True
        when = max(self.engine.now, self.cpu.busy_until)
        self.engine.schedule_at(when, self._dispatch)

    def _dispatch(self) -> None:
        self._dispatch_pending = False
        if self.current is not None:
            return
        slot = self._pick_policy()
        if slot is None:
            return
        thread = slot.policy.pop()
        if thread is None:
            return
        self.current = thread
        thread.state = RUNNING
        self.context_switches += 1
        if thread.pending_op is not None:
            op, thread.pending_op = thread.pending_op, None
            self._handle_op(thread, op)
        else:
            self._step(thread, None)

    def _pick_policy(self) -> Optional[_PolicySlot]:
        best: Optional[_PolicySlot] = None
        for slot in self._slots.values():
            if not len(slot.policy):
                continue
            if best is None or slot.vtime < best.vtime:
                best = slot
        return best

    # -- thread stepping -----------------------------------------------------------

    def _step(self, thread: SimThread, send_value: Any) -> None:
        """Advance *thread* until it blocks, computes, yields, or ends."""
        try:
            op = thread.body.send(send_value)
        except StopIteration:
            self._finish(thread)
            return
        self._handle_op(thread, op)

    def _finish(self, thread: SimThread) -> None:
        thread.state = DONE
        if self.current is thread:
            self.current = None
        self._request_dispatch()

    def _handle_op(self, thread: SimThread, op: Op) -> None:
        while True:
            if isinstance(op, Compute):
                self._start_compute(thread, op)
                return
            if isinstance(op, Dequeue):
                if op.queue.is_empty():
                    self._block(thread, op, self._deq_waiters)
                    return
                next_op = self._advance(thread, op.queue.dequeue())
            elif isinstance(op, DequeueBatch):
                if op.queue.is_empty():
                    self._block(thread, op, self._deq_waiters)
                    return
                # One scheduler operation moves the whole run: the thread
                # paid one wakeup and one dispatch for up to `limit` items.
                next_op = self._advance(thread,
                                        op.queue.dequeue_batch(op.limit))
            elif isinstance(op, Enqueue):
                if op.queue.is_full():
                    self._block(thread, op, self._enq_waiters)
                    return
                op.queue.enqueue(op.item)
                next_op = self._advance(thread, None)
            elif isinstance(op, WaitSpace):
                if op.queue.is_full():
                    self._block(thread, op, self._enq_waiters)
                    return
                next_op = self._advance(thread, None)
            elif isinstance(op, Sleep):
                self._sleep(thread, op.us)
                return
            elif isinstance(op, _Yield):
                self._yield_cpu(thread)
                return
            else:
                raise TypeError(f"{thread.name} yielded unknown op {op!r}")
            if next_op is _STOPPED:
                return
            op = next_op

    #: Sentinel: the generator finished while being advanced inline.
    # (module-private; compared by identity)

    def _advance(self, thread: SimThread, send_value: Any):
        try:
            return thread.body.send(send_value)
        except StopIteration:
            self._finish(thread)
            return _STOPPED

    def _start_compute(self, thread: SimThread, op: Compute) -> None:
        slot = self._slots[thread.policy]
        slot.vtime += op.us / slot.share
        thread.cpu_us += op.us
        if thread.path is not None:
            thread.path.charge_cycles(op.us * self.cpu.mhz)

        def done() -> None:
            if thread.state == RUNNING:
                self._step(thread, None)

        self.cpu.start_compute(op.us, done)

    def _block(self, thread: SimThread, op: Op,
               waiters: Dict[int, Deque[SimThread]]) -> None:
        queue: PathQueue = op.queue  # type: ignore[attr-defined]
        self._watch(queue)
        thread.state = BLOCKED
        thread.pending_op = op
        thread.blocks += 1
        waiters.setdefault(id(queue), deque()).append(thread)
        if self.current is thread:
            self.current = None
        self._request_dispatch()

    def _sleep(self, thread: SimThread, us: float) -> None:
        thread.state = BLOCKED
        if self.current is thread:
            self.current = None
        self.engine.schedule(us, self.make_runnable, thread)
        self._request_dispatch()

    def _yield_cpu(self, thread: SimThread) -> None:
        if self.current is thread:
            self.current = None
        thread.state = BLOCKED  # so make_runnable re-queues it
        self.make_runnable(thread, floor=False)
        self._request_dispatch()

    # -- queue wake plumbing -----------------------------------------------------------

    def _watch(self, queue: PathQueue) -> None:
        if id(queue) in self._watched_queues:
            return
        self._watched_queues.add(id(queue))
        queue.on_enqueue(self._queue_filled)
        queue.on_dequeue(self._queue_drained)

    def _queue_filled(self, queue: PathQueue) -> None:
        self._wake_one(self._deq_waiters.get(id(queue)))

    def _queue_drained(self, queue: PathQueue) -> None:
        waiters = self._enq_waiters.get(id(queue))
        if not waiters:
            return
        # Space waiters are of two kinds: WaitSpace watchers, which
        # consume nothing, and Enqueue waiters, which each need a free
        # slot.  Waking exactly one waiter per drain loses a wake-up
        # whenever a watcher sits ahead of an enqueuer — the watcher
        # absorbs the only wake and the enqueuer blocks forever.  Wake
        # every watcher, plus as many enqueuers as there are free slots,
        # keeping the rest in FIFO order.  (An overwoken enqueuer re-blocks
        # harmlessly at dispatch, so the budget is an efficiency bound,
        # not a correctness one.)
        budget = queue.free_slots
        kept: Deque[SimThread] = deque()
        while waiters:
            thread = waiters.popleft()
            if isinstance(thread.pending_op, Enqueue) \
                    and budget is not None:
                if budget <= 0:
                    kept.append(thread)
                    continue
                budget -= 1
            self.make_runnable(thread)
        waiters.extend(kept)

    def _wake_one(self, waiters: Optional[Deque[SimThread]]) -> None:
        if waiters:
            self.make_runnable(waiters.popleft())

    # -- introspection ---------------------------------------------------------------------

    def ready_count(self) -> int:
        return sum(len(slot.policy) for slot in self._slots.values())

    def idle(self) -> bool:
        return self.current is None and self.ready_count() == 0

    def __repr__(self) -> str:
        running = self.current.name if self.current else "-"
        return (f"<Scheduler running={running} ready={self.ready_count()} "
                f"switches={self.context_switches}>")


class _Stopped:
    def __repr__(self) -> str:  # pragma: no cover
        return "<thread stopped>"


_STOPPED = _Stopped()
