"""Simulated threads: the active entities that execute paths.

Section 3.4: "Paths are executed by threads — the active entities in
Scout ... threads are scheduled non-preemptively according to some
scheduling policy and priority."

A thread body is a Python generator that *yields* operations to the
scheduler:

* ``Compute(us)``      — consume CPU for ``us`` virtual microseconds;
* ``Dequeue(q)``       — take an item from a path queue, blocking while
  empty (``yield``'s value is the item);
* ``Enqueue(q, item)`` — put an item, blocking while full;
* ``WaitSpace(q)``     — block until the queue has a free slot (used to
  avoid processing work whose output could not be stored: "if the output
  queue is full already, there is little point in scheduling a thread to
  process a packet in the input queue");
* ``Sleep(us)``        — block for a fixed virtual duration;
* ``YIELD``            — voluntarily return to the ready queue (this is
  the *only* way another same-policy thread gets the CPU, because
  scheduling is non-preemptive).

Everything a thread does between yields is logically instantaneous; CPU
time is consumed only through ``Compute`` (and through interrupts stealing
from an in-flight compute).
"""

from __future__ import annotations

import itertools
from typing import Any, Generator, Optional

from ..core.path import Path
from ..core.queues import PathQueue

_thread_ids = itertools.count(1)

#: Thread states.
READY, RUNNING, BLOCKED, DONE = "ready", "running", "blocked", "done"


class Op:
    """Base class for operations a thread may yield."""

    __slots__ = ()


class Compute(Op):
    """Consume *us* microseconds of CPU (non-preemptively)."""

    __slots__ = ("us",)

    def __init__(self, us: float):
        if us < 0:
            raise ValueError("compute time must be non-negative")
        self.us = us

    def __repr__(self) -> str:
        return f"Compute({self.us:.2f}us)"


class Dequeue(Op):
    """Take the next item from *queue*, blocking while it is empty."""

    __slots__ = ("queue",)

    def __init__(self, queue: PathQueue):
        self.queue = queue

    def __repr__(self) -> str:
        return f"Dequeue({self.queue.name})"


class DequeueBatch(Op):
    """Take up to *limit* items from *queue* in one scheduler operation,
    blocking while it is empty (``yield``'s value is a non-empty list).

    This is the batching hook of DESIGN.md §13: a path thread that
    processes arrivals in runs pays one scheduler dispatch — one wakeup,
    one context switch, one ready-queue transit — per *batch* instead of
    per message.  The queue's own statistics stay exact per item.
    """

    __slots__ = ("queue", "limit")

    def __init__(self, queue: PathQueue, limit: Optional[int] = None):
        if limit is not None and limit < 1:
            raise ValueError("batch limit must be positive (or None)")
        self.queue = queue
        self.limit = limit

    def __repr__(self) -> str:
        cap = "all" if self.limit is None else str(self.limit)
        return f"DequeueBatch({self.queue.name}, limit={cap})"


class Enqueue(Op):
    """Deposit *item* on *queue*, blocking while it is full."""

    __slots__ = ("queue", "item")

    def __init__(self, queue: PathQueue, item: Any):
        self.queue = queue
        self.item = item

    def __repr__(self) -> str:
        return f"Enqueue({self.queue.name})"


class WaitSpace(Op):
    """Block until *queue* has at least one free slot (without taking it)."""

    __slots__ = ("queue",)

    def __init__(self, queue: PathQueue):
        self.queue = queue

    def __repr__(self) -> str:
        return f"WaitSpace({self.queue.name})"


class Sleep(Op):
    """Block for *us* virtual microseconds."""

    __slots__ = ("us",)

    def __init__(self, us: float):
        if us < 0:
            raise ValueError("sleep time must be non-negative")
        self.us = us

    def __repr__(self) -> str:
        return f"Sleep({self.us:.2f}us)"


class _Yield(Op):
    """Voluntarily relinquish the CPU (cooperative round-robin point)."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "YIELD"


#: The singleton yield operation.
YIELD = _Yield()

ThreadBody = Generator[Op, Any, None]


class SimThread:
    """A non-preemptively scheduled thread.

    Parameters
    ----------
    body:
        The generator driving the thread.
    name:
        Diagnostic label.
    policy:
        Name of the scheduling policy this thread runs under.
    priority:
        Priority within a fixed-priority policy (lower number = higher
        priority, matching "the path handling ICMP requests is run at the
        next lower priority" being priority+1).
    path:
        The path this thread executes on behalf of; lets the scheduler
        invoke the path's ``wakeup`` callback ("a mechanism that allows a
        newly awakened thread to inherit a path's scheduling
        requirements") and charges CPU to the path.
    """

    def __init__(self, body: ThreadBody, name: str = "",
                 policy: str = "rr", priority: int = 0,
                 path: Optional[Path] = None):
        self.tid = next(_thread_ids)
        self.body = body
        self.name = name or f"thread{self.tid}"
        self.policy = policy
        self.priority = priority
        self.path = path
        self.state = BLOCKED  # not yet started; spawn() makes it READY
        #: Absolute deadline for EDF scheduling (smaller = more urgent).
        self.deadline = float("inf")
        #: Operation being retried after a block (set by the scheduler).
        self.pending_op: Optional[Op] = None
        # accounting
        self.cpu_us = 0.0
        self.blocks = 0
        self.wakeups = 0

    def __repr__(self) -> str:
        return (f"<SimThread {self.name} {self.state} policy={self.policy} "
                f"prio={self.priority}>")
