"""SimWorld: the bundled substrate a kernel runs on.

Creates the engine, CPU, scheduler (with the two policies the paper
implemented — fixed-priority round-robin and EDF), and a seeded random
generator, wired together.  Kernels and experiments build on this instead
of assembling the pieces by hand.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .cpu import CPU, CPU_MHZ
from .engine import Engine
from .sched import EDF, FixedPriorityRR, Scheduler

#: Policy names used throughout the library.
POLICY_RR = "rr"
POLICY_EDF = "edf"


class SimWorld:
    """Engine + CPU + scheduler + deterministic randomness.

    Parameters
    ----------
    seed:
        Seed for the world's random generator; every experiment is
        deterministic given its seed.
    mhz:
        CPU clock (defaults to the paper's 300 MHz Alpha).
    rr_share, edf_share:
        CPU share for each scheduling policy ("allocates a percentage of
        CPU time to each"); shares only matter when both policies have
        ready threads.
    """

    def __init__(self, seed: int = 0, mhz: float = CPU_MHZ,
                 rr_share: float = 1.0, edf_share: float = 1.0,
                 rr_levels: int = 16):
        self.engine = Engine()
        self.cpu = CPU(self.engine, mhz=mhz)
        self.scheduler = Scheduler(self.engine, self.cpu)
        self.scheduler.add_policy(POLICY_RR, FixedPriorityRR(levels=rr_levels),
                                  share=rr_share)
        self.scheduler.add_policy(POLICY_EDF, EDF(), share=edf_share)
        self.rng = np.random.default_rng(seed)
        self.seed = seed

    @property
    def now(self) -> float:
        return self.engine.now

    def new_segment(self, bandwidth_mbps: Optional[float] = None,
                    latency_us: Optional[float] = None, **kwargs):
        """Create an :class:`~repro.net.segment.EtherSegment` on this
        world's engine (multi-hop topologies make one per link)."""
        from ..net.segment import EtherSegment
        from .. import params

        return EtherSegment(
            self.engine,
            bandwidth_mbps=bandwidth_mbps if bandwidth_mbps is not None
            else params.ETH_BANDWIDTH_MBPS,
            latency_us=latency_us if latency_us is not None
            else params.ETH_LINK_LATENCY_US,
            rng=self.rng, **kwargs)

    def spawn(self, body, name: str = "", policy: str = POLICY_RR,
              priority: int = 0, path=None):
        """Spawn a thread on this world's scheduler."""
        return self.scheduler.spawn(body, name=name, policy=policy,
                                    priority=priority, path=path)

    def run_for(self, duration_us: float) -> None:
        """Advance virtual time by *duration_us*."""
        self.engine.run_until(self.engine.now + duration_us)

    def run_until(self, time_us: float) -> None:
        self.engine.run_until(time_us)

    def run_until_idle(self, max_events: Optional[int] = None) -> int:
        """Drain all pending events (careful with self-perpetuating loads)."""
        return self.engine.run(max_events=max_events)

    def __repr__(self) -> str:
        return f"<SimWorld t={self.engine.now:.1f}us seed={self.seed}>"
