"""The virtual CPU: a non-preemptive uniprocessor with interrupt stealing.

The paper's numbers come from a 300 MHz Alpha 21064; :data:`CPU_MHZ`
reproduces that machine's clock so costs expressed in cycles translate to
the same microseconds the paper reports.

Two kinds of work consume the CPU:

* **Thread computes** — a thread asks for N microseconds of CPU; because
  Scout threads are scheduled non-preemptively, exactly one compute is in
  flight at a time and it runs to completion.
* **Interrupts** — device events (packet arrival, vertical sync) run their
  handlers *immediately* and steal their cost from whatever compute is in
  progress, pushing its completion back.  This is the mechanism that makes
  the Linux baseline collapse under the Table 2 ICMP flood: interrupt-time
  protocol processing steals the decoder's CPU.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .engine import Engine

#: The paper's machine: 300 MHz Alpha 21064.
CPU_MHZ = 300.0

#: Small epsilon for floating-point completion checks.
_EPS = 1e-9


def cycles_to_us(cycles: float, mhz: float = CPU_MHZ) -> float:
    """Convert a cycle count to microseconds at *mhz*."""
    return cycles / mhz


def us_to_cycles(micros: float, mhz: float = CPU_MHZ) -> float:
    """Convert microseconds to cycles at *mhz*."""
    return micros * mhz


class _Slice:
    """The single in-flight thread compute."""

    __slots__ = ("end", "cost_us", "on_done")

    def __init__(self, end: float, cost_us: float, on_done: Callable[[], None]):
        self.end = end
        self.cost_us = cost_us
        self.on_done = on_done


class CPU:
    """A single virtual CPU attached to an engine.

    Accounting split three ways — compute, interrupt, idle — so
    experiments can report utilization and interrupt load directly.
    """

    def __init__(self, engine: Engine, mhz: float = CPU_MHZ):
        self.engine = engine
        self.mhz = mhz
        #: Earliest time a new compute could begin (interrupts while idle
        #: still occupy the CPU).
        self.busy_until = 0.0
        self._slice: Optional[_Slice] = None
        self._arm_seq = 0
        # accounting
        self.compute_us = 0.0
        self.interrupt_us = 0.0
        self.interrupts_taken = 0

    # -- conversions -------------------------------------------------------------

    def cycles_to_us(self, cycles: float) -> float:
        return cycles / self.mhz

    # -- interrupts ---------------------------------------------------------------

    def interrupt(self, cost_us: float,
                  handler: Optional[Callable[..., Any]] = None,
                  *args: Any) -> Any:
        """Take an interrupt now: run *handler* and steal *cost_us*.

        The handler's logical effects (classification, enqueue) happen
        immediately; the *time* cost lands on whatever compute is in
        progress, or occupies the otherwise-idle CPU.
        """
        if cost_us < 0:
            raise ValueError("interrupt cost must be non-negative")
        result = handler(*args) if handler is not None else None
        self.interrupts_taken += 1
        self.extend_interrupt(cost_us)
        return result

    def extend_interrupt(self, cost_us: float) -> None:
        """Charge additional interrupt-level CPU time without counting a
        new interrupt — used by handlers whose cost depends on what they
        find (e.g. classification hops)."""
        if cost_us < 0:
            raise ValueError("interrupt cost must be non-negative")
        self.interrupt_us += cost_us
        if self._slice is not None:
            self._slice.end += cost_us  # steal from the running thread
        else:
            start = max(self.busy_until, self.engine.now)
            self.busy_until = start + cost_us

    # -- thread computes -------------------------------------------------------------

    @property
    def computing(self) -> bool:
        return self._slice is not None

    def start_compute(self, cost_us: float, on_done: Callable[[], None]) -> None:
        """Begin a thread compute of *cost_us*; calls *on_done* when the
        CPU has actually delivered that much time (interrupt-inflated)."""
        if cost_us < 0:
            raise ValueError("compute cost must be non-negative")
        if self._slice is not None:
            raise RuntimeError("non-preemptive CPU already has a compute in flight")
        start = max(self.engine.now, self.busy_until)
        self._slice = _Slice(start + cost_us, cost_us, on_done)
        self.compute_us += cost_us
        self._arm(self._slice.end)

    def _arm(self, when: float) -> None:
        self._arm_seq += 1
        self.engine.schedule_at(when, self._completion_check, self._arm_seq)

    def _completion_check(self, seq: int) -> None:
        if seq != self._arm_seq or self._slice is None:
            return  # stale arm: the slice was extended and re-armed
        if self.engine.now + _EPS < self._slice.end:
            self._arm(self._slice.end)  # interrupts pushed the end back
            return
        done = self._slice
        self._slice = None
        self.busy_until = self.engine.now
        done.on_done()

    # -- reporting -------------------------------------------------------------------

    def utilization(self, elapsed_us: Optional[float] = None) -> float:
        """Fraction of elapsed virtual time spent computing or in
        interrupts (1.0 = saturated)."""
        window = elapsed_us if elapsed_us is not None else self.engine.now
        if window <= 0:
            return 0.0
        return min(1.0, (self.compute_us + self.interrupt_us) / window)

    def __repr__(self) -> str:
        state = "busy" if self.computing else "idle"
        return (f"<CPU {self.mhz:.0f}MHz {state} "
                f"compute={self.compute_us:.0f}us "
                f"irq={self.interrupt_us:.0f}us>")
