"""The asyncio executor: the same path threads, driven on wall-clock time.

The deterministic :class:`~repro.sim.sched.Scheduler` owns tier-1: it
replays a seeded world in virtual microseconds.  This module is the
wall-clock edge (DESIGN.md §18): the *same* thread-body generators —
``Dequeue`` / ``DequeueBatch`` / ``Enqueue`` / ``WaitSpace`` /
``Compute`` / ``YIELD`` — run as asyncio tasks, with the queue-blocking
operations awaited against real arrivals instead of simulated ones.
Nothing in the kernel changes: a body written for the simulator is a
body this executor can run, which is what makes the two executors
differentially testable (``tests/aio/test_parity.py``).

Cycle accounting is preserved, not discarded: every ``Compute`` still
charges the path (``Path.charge_cycles``) and the world CPU's
``compute_us`` exactly as the simulated scheduler would, so a kernel's
books are executor-independent; the
:class:`~repro.observe.wallclock.WallClockBridge` then relates those
virtual charges to real elapsed time.

Three pieces:

* :class:`AioExecutor` — adopts thread bodies, runs each as a task, and
  maps every yielded :class:`~repro.sim.threads.Op` onto an awaitable;
* :class:`AioThread` — the task-side stand-in for
  :class:`~repro.sim.threads.SimThread` (same accounting fields);
* :class:`AioWorld` — a :class:`~repro.sim.world.SimWorld` whose
  ``spawn`` registers bodies with the executor instead of the
  deterministic scheduler, so an unmodified kernel boots onto it.
"""

from __future__ import annotations

import asyncio
import itertools
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from ..core.queues import PathQueue
from .threads import (
    BLOCKED,
    DONE,
    READY,
    RUNNING,
    Compute,
    Dequeue,
    DequeueBatch,
    Enqueue,
    Op,
    Sleep,
    ThreadBody,
    WaitSpace,
    _Yield,
)
from .world import SimWorld

__all__ = ["AioExecutor", "AioThread", "AioWorld"]

_aio_thread_ids = itertools.count(1)


class AioThread:
    """A path thread adopted by the asyncio executor.

    Carries the same accounting fields as
    :class:`~repro.sim.threads.SimThread` (``cpu_us``, ``blocks``,
    ``wakeups``, ``state``) so kernel code that inspects its spawned
    threads sees the shape it expects; ``policy``/``priority`` are kept
    for diagnostics — the asyncio event loop is the only scheduler here.
    """

    def __init__(self, body: ThreadBody, name: str = "",
                 policy: str = "rr", priority: int = 0, path=None):
        self.tid = next(_aio_thread_ids)
        self.body = body
        self.name = name or f"aiothread{self.tid}"
        self.policy = policy
        self.priority = priority
        self.path = path
        self.state = READY
        self.deadline = float("inf")
        self.task: Optional["asyncio.Task"] = None
        # accounting (same fields as SimThread)
        self.cpu_us = 0.0
        self.blocks = 0
        self.wakeups = 0

    def __repr__(self) -> str:
        return (f"<AioThread {self.name} {self.state} "
                f"policy={self.policy} prio={self.priority}>")


class _Gate:
    """Wait lists for one queue: fill waiters (consumers blocked on
    empty) and space waiters (producers/watchers blocked on full)."""

    __slots__ = ("fill_waiters", "space_waiters")

    def __init__(self) -> None:
        self.fill_waiters: Deque["asyncio.Future"] = deque()
        self.space_waiters: Deque["asyncio.Future"] = deque()


class AioExecutor:
    """Run thread-body generators as asyncio tasks.

    Parameters
    ----------
    world:
        The :class:`~repro.sim.world.SimWorld` whose CPU accounting the
        executor keeps consistent (``cpu.compute_us`` advances exactly
        as the simulated scheduler would advance it).
    pace:
        Wall seconds per virtual second for ``Compute``/``Sleep``
        pacing.  ``0.0`` (the default) runs computes as fast as the
        event loop allows — the virtual cost is *accounted*, never
        slept — which is what the parity tests and benchmarks want.
        ``1.0`` replays virtual time in real time.
    """

    def __init__(self, world: SimWorld, pace: float = 0.0):
        if pace < 0:
            raise ValueError("pace must be non-negative")
        self.world = world
        self.pace = pace
        self.threads: List[AioThread] = []
        self.threads_spawned = 0
        self._gates: Dict[int, _Gate] = {}
        self._loop: Optional["asyncio.AbstractEventLoop"] = None
        self._started = False
        self._closed = False
        #: Tasks currently inside an ``await`` on a queue gate.
        self._parked = 0
        #: Futures a waker resolved whose task has not resumed yet.
        self._wakes_pending = 0
        #: Tasks whose driver coroutine is live (started, not finished).
        self._alive = 0
        #: Tasks created but whose driver has not yet had a first tick.
        self._unstarted = 0

    # -- registration ------------------------------------------------------

    def spawn(self, body: ThreadBody, name: str = "", policy: str = "rr",
              priority: int = 0, path=None) -> AioThread:
        """Adopt *body*; it starts when :meth:`start` runs (or
        immediately, when the executor is already serving)."""
        if self._closed:
            raise RuntimeError("executor is closed")
        thread = AioThread(body, name=name, policy=policy,
                           priority=priority, path=path)
        self.threads.append(thread)
        self.threads_spawned += 1
        if self._started:
            self._create_task(thread)
        return thread

    def _create_task(self, thread: AioThread) -> None:
        self._unstarted += 1
        thread.task = self._loop.create_task(self._drive(thread))

    async def start(self) -> None:
        """Create one task per adopted thread (idempotent)."""
        if self._closed:
            raise RuntimeError("executor is closed")
        self._loop = asyncio.get_running_loop()
        if self._started:
            return
        self._started = True
        for thread in self.threads:
            if thread.task is None:
                self._create_task(thread)

    # -- idle detection ----------------------------------------------------

    def idle(self) -> bool:
        """True when every live task is parked on a queue with no wakeup
        in flight — the wall-clock analogue of a drained event heap."""
        return (self._started and self._unstarted == 0
                and self._wakes_pending == 0
                and self._parked == self._alive)

    async def drain(self) -> None:
        """Run until every task is parked on an empty/full queue.

        The asyncio analogue of ``SimWorld.run_until_idle``: inject a
        burst (``kernel.rx_burst``), then ``await drain()`` and the
        kernel is quiescent.  Hangs on self-perpetuating loads, exactly
        like its virtual-time counterpart.
        """
        if not self._started:
            await self.start()
        while not self.idle():
            await asyncio.sleep(0)

    async def close(self) -> None:
        """Cancel every task and run the bodies' ``finally`` blocks."""
        self._closed = True
        tasks = [t.task for t in self.threads if t.task is not None]
        for task in tasks:
            task.cancel()
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        self._started = False

    # -- the driver --------------------------------------------------------

    async def _drive(self, thread: AioThread) -> None:
        self._unstarted -= 1
        self._alive += 1
        thread.state = RUNNING
        body = thread.body
        send_value: Any = None
        try:
            while True:
                try:
                    op = body.send(send_value)
                except StopIteration:
                    return
                send_value = await self._perform(thread, op)
        except asyncio.CancelledError:
            body.close()
            raise
        finally:
            self._alive -= 1
            thread.state = DONE

    async def _perform(self, thread: AioThread, op: Op) -> Any:
        if isinstance(op, Compute):
            us = op.us
            thread.cpu_us += us
            if thread.path is not None:
                thread.path.charge_cycles(us * self.world.cpu.mhz)
            # Keep the world CPU's books executor-independent: the
            # simulated scheduler adds the same amount via start_compute.
            self.world.cpu.compute_us += us
            await self._pause(us)
            return None
        if isinstance(op, Dequeue):
            await self._wait_fill(thread, op.queue)
            return op.queue.dequeue()
        if isinstance(op, DequeueBatch):
            await self._wait_fill(thread, op.queue)
            return op.queue.dequeue_batch(op.limit)
        if isinstance(op, Enqueue):
            await self._wait_space(thread, op.queue)
            op.queue.enqueue(op.item)
            return None
        if isinstance(op, WaitSpace):
            await self._wait_space(thread, op.queue)
            return None
        if isinstance(op, Sleep):
            await self._pause(op.us)
            return None
        if isinstance(op, _Yield):
            await asyncio.sleep(0)
            return None
        raise TypeError(f"{thread.name} yielded unknown op {op!r}")

    async def _pause(self, us: float) -> None:
        if self.pace > 0:
            await asyncio.sleep(us * self.pace / 1e6)
        else:
            await asyncio.sleep(0)

    # -- queue gating ------------------------------------------------------

    async def _wait_fill(self, thread: AioThread, queue: PathQueue) -> None:
        gate = self._watch(queue)
        while queue.is_empty():
            thread.state = BLOCKED
            thread.blocks += 1
            await self._park(gate.fill_waiters)
            thread.state = RUNNING
            thread.wakeups += 1

    async def _wait_space(self, thread: AioThread, queue: PathQueue) -> None:
        gate = self._watch(queue)
        while queue.is_full():
            thread.state = BLOCKED
            thread.blocks += 1
            await self._park(gate.space_waiters)
            thread.state = RUNNING
            thread.wakeups += 1

    def _watch(self, queue: PathQueue) -> _Gate:
        gate = self._gates.get(id(queue))
        if gate is None:
            gate = _Gate()
            self._gates[id(queue)] = gate
            queue.on_enqueue(lambda q, g=gate: self._wake_one(g.fill_waiters))
            queue.on_dequeue(lambda q, g=gate: self._wake_all(g.space_waiters))
        return gate

    async def _park(self, waiters: Deque["asyncio.Future"]) -> None:
        fut = self._loop.create_future()
        waiters.append(fut)
        self._parked += 1
        try:
            await fut
        finally:
            self._parked -= 1
            if getattr(fut, "_woken", False):
                self._wakes_pending -= 1

    def _resolve(self, fut: "asyncio.Future") -> None:
        fut._woken = True  # type: ignore[attr-defined]
        self._wakes_pending += 1
        fut.set_result(None)

    def _wake_one(self, waiters: Deque["asyncio.Future"]) -> None:
        # One item arrived: wake one consumer (the simulated scheduler's
        # _wake_one semantics); a spuriously woken task re-parks after
        # rechecking, so over-waking would be waste, not a bug.
        while waiters:
            fut = waiters.popleft()
            if not fut.done():
                self._resolve(fut)
                return

    def _wake_all(self, waiters: Deque["asyncio.Future"]) -> None:
        # A slot freed: wake every watcher and producer; each rechecks
        # fullness and re-parks if another producer won the slot (the
        # WaitSpace-vs-Enqueue budget dance of sched._queue_drained,
        # collapsed to recheck loops).
        while waiters:
            fut = waiters.popleft()
            if not fut.done():
                self._resolve(fut)

    # -- introspection -----------------------------------------------------

    def ready_count(self) -> int:
        return self._alive - self._parked

    def __repr__(self) -> str:
        return (f"<AioExecutor threads={len(self.threads)} "
                f"alive={self._alive} parked={self._parked} "
                f"pace={self.pace}>")


class AioWorld(SimWorld):
    """A SimWorld whose spawned threads run on the asyncio executor.

    Everything else — engine, CPU model, seeded randomness, segment
    construction — is inherited unchanged, so a kernel boots onto an
    ``AioWorld`` exactly as it boots onto a ``SimWorld``; only the
    executor of its path threads differs.  The virtual-time engine still
    exists (path-create machinery and protocol timers schedule against
    it) but nothing pumps it while the asyncio executor serves: the
    wall-clock forms run headless kernels (``display=False``) whose
    correctness does not depend on timer-driven behaviour.
    """

    def __init__(self, seed: int = 0, pace: float = 0.0, **world_kwargs):
        super().__init__(seed=seed, **world_kwargs)
        self.executor = AioExecutor(self, pace=pace)

    def spawn(self, body, name: str = "", policy: str = "rr",
              priority: int = 0, path=None):
        return self.executor.spawn(body, name=name, policy=policy,
                                   priority=priority, path=path)

    def __repr__(self) -> str:
        return f"<AioWorld seed={self.seed} {self.executor!r}>"
