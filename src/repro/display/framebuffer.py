"""The framebuffer: vsync-driven draining of video output queues.

"In DISPLAY, the queue is drained in response to the vertical
synchronization impulse of the video display.  Output to the display is
synchronized to this impulse because there is no point in updating the
display at a higher frequency."

Two drain modes, matching the paper's two uses:

* **max-rate** (Table 1): the experiment measures the *maximum decoding
  rate*, so presentation must not throttle the pipeline — every queued
  frame is retired at each vsync and counted;
* **realtime** (Section 4.3): each sink has a presentation schedule
  (frame *k* is due at ``start + k/fps``); a presentation instant that
  passes with an empty queue is a **missed deadline** — the quantity the
  EDF-vs-RR experiment reports.
"""

from __future__ import annotations

from typing import Dict, Optional

from .. import params
from ..core.queues import PathQueue

#: CPU cost of the vsync interrupt handler itself.
VSYNC_HANDLER_US = 3.0


class VideoSink:
    """Per-path presentation bookkeeping."""

    def __init__(self, name: str, queue: PathQueue, fps: float,
                 started_at: float, prebuffer: int = 0):
        if fps <= 0:
            raise ValueError("fps must be positive")
        self.name = name
        self.queue = queue
        self.fps = fps
        self.started_at = started_at
        #: Frames that must be queued before the presentation schedule
        #: starts (realtime mode only) — players buffer before playing.
        self.prebuffer = prebuffer
        #: Total frames the stream will deliver (when known): presentation
        #: instants past this are not deadlines, so a finished clip stops
        #: accruing misses.  ``None`` = open-ended stream.
        self.expected_frames: Optional[int] = None
        self.next_index = 0          # next presentation instant index
        self.presented = 0
        self.missed_deadlines = 0
        self.first_presented_at: Optional[float] = None
        self.last_presented_at: Optional[float] = None

    def present_time(self, index: int) -> float:
        """Absolute due time of presentation instant *index*."""
        return self.started_at + index * 1_000_000.0 / self.fps

    def next_frame_deadline(self) -> float:
        """Display time of the next frame to be *put in* the output queue
        — the paper's EDF deadline when the output queue is the
        bottleneck: instant index advances past everything already
        queued."""
        return self.present_time(self.next_index + len(self.queue))

    def achieved_fps(self) -> float:
        """Presented frames over the active presentation span."""
        if self.presented < 2 or self.first_presented_at is None \
                or self.last_presented_at is None \
                or self.last_presented_at <= self.first_presented_at:
            return 0.0
        span = self.last_presented_at - self.first_presented_at
        return (self.presented - 1) * 1_000_000.0 / span


class Framebuffer:
    """The display device.  Runs a periodic vsync interrupt on the CPU."""

    def __init__(self, engine, cpu, vsync_hz: float = params.VSYNC_HZ,
                 rate_limited: bool = True):
        self.engine = engine
        self.cpu = cpu
        self.vsync_hz = vsync_hz
        self.rate_limited = rate_limited
        self.period_us = 1_000_000.0 / vsync_hz
        self.sinks: Dict[str, VideoSink] = {}
        self.vsyncs = 0
        self._running = False

    # -- sink management --------------------------------------------------------

    def add_sink(self, name: str, queue: PathQueue, fps: float,
                 prebuffer: int = 0) -> VideoSink:
        if name in self.sinks:
            raise ValueError(f"duplicate sink {name!r}")
        sink = VideoSink(name, queue, fps, started_at=self.engine.now,
                         prebuffer=prebuffer)
        self.sinks[name] = sink
        return sink

    def remove_sink(self, name: str) -> None:
        self.sinks.pop(name, None)

    # -- vsync loop ----------------------------------------------------------------

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self.engine.schedule(self.period_us, self._vsync)

    def stop(self) -> None:
        self._running = False

    def _vsync(self) -> None:
        if not self._running:
            return
        self.vsyncs += 1
        self.cpu.interrupt(VSYNC_HANDLER_US, self._drain)
        self.engine.schedule(self.period_us, self._vsync)

    def _drain(self) -> None:
        now = self.engine.now
        for sink in self.sinks.values():
            if self.rate_limited:
                self._drain_realtime(sink, now)
            else:
                self._drain_max_rate(sink, now)

    def _drain_max_rate(self, sink: VideoSink, now: float) -> None:
        # One batched dequeue retires everything queued; queue statistics
        # and dequeue listeners stay exact per frame (DESIGN.md §13).
        for _frame in sink.queue.dequeue_batch():
            self._count_presentation(sink, now)

    def _drain_realtime(self, sink: VideoSink, now: float) -> None:
        # The schedule starts once the prebuffer fills (or with the first
        # frame when no prebuffer is set): instants before the stream
        # produces anything are not deadlines yet.
        if sink.presented == 0 and sink.missed_deadlines == 0 \
                and len(sink.queue) <= max(0, sink.prebuffer - 1):
            sink.started_at = now
            return
        # Retire every presentation instant that has come due: show a
        # frame if one is queued, otherwise record a missed deadline.
        while sink.present_time(sink.next_index) <= now + 1e-9:
            if sink.expected_frames is not None \
                    and sink.next_index >= sink.expected_frames:
                break  # the clip is over: no further deadlines exist
            if sink.queue.is_empty():
                sink.missed_deadlines += 1
            else:
                sink.queue.dequeue()
                self._count_presentation(sink, now)
            sink.next_index += 1

    @staticmethod
    def _count_presentation(sink: VideoSink, now: float) -> None:
        sink.presented += 1
        if sink.first_presented_at is None:
            sink.first_presented_at = now
        sink.last_presented_at = now

    def __repr__(self) -> str:
        mode = "realtime" if self.rate_limited else "max-rate"
        return (f"<Framebuffer {self.vsync_hz:.0f}Hz {mode} "
                f"sinks={len(self.sinks)}>")
