"""Display subsystem: framebuffer with vsync, DISPLAY router."""

from .framebuffer import Framebuffer, VideoSink, VSYNC_HANDLER_US
from .router import PA_DEADLINE_MODE, PA_PREBUFFER, DisplayRouter, DisplayStage

__all__ = ["Framebuffer", "VideoSink", "VSYNC_HANDLER_US",
           "DisplayRouter", "DisplayStage",
           "PA_DEADLINE_MODE", "PA_PREBUFFER"]
