"""The DISPLAY router: manages the framebuffer (Figure 9's topmost router).

Path creation is invoked *on* DISPLAY (SHELL maps ``mpeg_decode`` to
``pathCreate(DISPLAY, ...)``); the ``PA_PATHNAME`` attribute forces the
routing decision toward the MPEG router.  The DISPLAY stage charges each
frame's dither/display cost, registers the path's output queue as a vsync
sink, and installs the path's EDF ``wakeup`` callback driven off the
bottleneck (output) queue.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..core.attributes import (
    PA_FRAME_RATE,
    PA_PATHNAME,
    PA_SCHED_POLICY,
    PA_SCHED_PRIORITY,
    Attrs,
)
from ..core.graph import register_router
from ..core.message import Msg
from ..core.router import DemuxResult, NextHop, Router, Service
from ..core.stage import BWD, FWD, Stage, forward
from ..mpeg.decoder import DecodedFrame
from ..mpeg.router import PA_VIDEO_PROFILE
from ..net.common import charge
from .framebuffer import Framebuffer, VideoSink

#: Frames buffered before realtime presentation starts.
PA_PREBUFFER = "PA_PREBUFFER"

#: EDF deadline computation mode (Section 4.3): ``"output"`` drives the
#: deadline off the output (display) queue only — "the implemented MPEG
#: decoder is currently optimized for the case where the output queue is
#: the bottleneck"; ``"min"`` takes the minimum of the output-queue
#: deadline and an input-queue deadline estimated from the measured
#: packet arrival rate — "the effective deadline can simply be computed
#: as the minimum of the deadlines associated with each queue".
PA_DEADLINE_MODE = "PA_DEADLINE_MODE"

#: Window of in-flight packets the input-side deadline tries to preserve.
_INPUT_PIPE_TARGET = 4


class DisplayStage(Stage):
    """DISPLAY's contribution to a video path (an extreme stage)."""

    def __init__(self, router: "DisplayRouter", exit_service):
        super().__init__(router, None, exit_service)
        self.sink: Optional[VideoSink] = None
        self.frames_dropped = 0
        self.set_deliver(FWD, self._down)
        self.set_deliver(BWD, self._present)

    def establish(self, attrs: Attrs) -> None:
        router: DisplayRouter = self.router  # type: ignore[assignment]
        fps = attrs.get(PA_FRAME_RATE)
        if fps is None:
            profile = attrs.get(PA_VIDEO_PROFILE)
            fps = profile.fps if profile is not None else 30.0
        self.sink = router.framebuffer.add_sink(
            f"path{self.path.pid}", self.path.output_queue(BWD), fps,
            prebuffer=int(attrs.get(PA_PREBUFFER, 0)))
        if attrs.get(PA_SCHED_POLICY, "edf") == "edf":
            self._install_edf_wakeup(attrs.get(PA_DEADLINE_MODE, "output"))
        else:
            self._install_rr_wakeup(attrs.get(PA_SCHED_PRIORITY, 0))

    def _install_edf_wakeup(self, mode: str) -> None:
        """The Section 4.3 mechanism: threads awakened to run in this path
        inherit a deadline computed from the bottleneck queue — the output
        queue by default, or the minimum over both queues in "min" mode."""
        sink = self.sink

        def output_deadline(path) -> float:
            return sink.next_frame_deadline()

        def input_deadline(path) -> float:
            """'The deadline is the time at which the input queue would
            have less than n free slots ... estimated based on the current
            length of the queue and the average packet arrival rate.'"""
            inq = path.input_queue(BWD)
            free = inq.free_slots
            interval = path.attrs.get("_pkt_interarrival_us")
            if free is None or interval is None or interval <= 0:
                return float("inf")
            slack = free - _INPUT_PIPE_TARGET
            if slack <= 0:
                return 0.0  # the pipe is about to stall: run now
            router: DisplayRouter = self.router  # type: ignore[assignment]
            return router.framebuffer.engine.now + slack * interval

        if mode == "min":
            def wakeup(path, thread):
                thread.deadline = min(output_deadline(path),
                                      input_deadline(path))

            def deadline_probe():
                return min(output_deadline(self.path),
                           input_deadline(self.path))
        else:
            def wakeup(path, thread):
                thread.deadline = output_deadline(path)

            def deadline_probe():
                return output_deadline(self.path)

        self.path.wakeup = wakeup
        # Expose the same deadline computation to the multipath layer:
        # the deadline-slack selection policy steers load toward group
        # members whose next deadline is furthest away.
        self.path.attrs["_edf_deadline_fn"] = deadline_probe

    def _install_rr_wakeup(self, priority: int) -> None:
        def wakeup(path, thread):
            thread.priority = priority

        self.path.wakeup = wakeup

    def destroy(self) -> None:
        router: DisplayRouter = self.router  # type: ignore[assignment]
        if self.sink is not None:
            router.framebuffer.remove_sink(self.sink.name)

    # -- deliver ----------------------------------------------------------------

    def _down(self, iface, msg, direction: int, **kwargs):
        return forward(iface, msg, direction, **kwargs)

    def _present(self, iface, frame, direction: int, account=None, **kwargs):
        router: DisplayRouter = self.router  # type: ignore[assignment]
        if not isinstance(frame, DecodedFrame):
            if isinstance(frame, Msg):
                frame.meta["drop_reason"] = "DISPLAY expects decoded frames"
            return None
        if account is not None:
            charge(account, frame.display_cost_us)
        frame.deadline = self.sink.next_frame_deadline() \
            if self.sink is not None else None
        if not self.path.output_queue(direction).try_enqueue(frame):
            # Route the discard through the path ledger like every other
            # drop site — the stage-local counter alone left these frames
            # invisible to PathStats/metrics reconciliation.
            self.frames_dropped += 1
            self.note_drop(frame, "display output queue full",
                           "outq_overflow")
            return None
        router.frames_queued += 1
        return None


@register_router("DisplayRouter")
class DisplayRouter(Router):
    """The framebuffer-managing router."""

    SERVICES = ("<down:net",)

    def __init__(self, name: str):
        super().__init__(name)
        self.framebuffer: Optional[Framebuffer] = None
        self.frames_queued = 0

    def attach_framebuffer(self, framebuffer: Framebuffer) -> None:
        self.framebuffer = framebuffer

    def create_stage(self, enter_service: int, attrs: Attrs
                     ) -> Tuple[Optional[Stage], Optional[NextHop]]:
        if self.framebuffer is None:
            raise RuntimeError(f"{self.name} has no attached framebuffer")
        down = self.service("down")
        target_name = attrs.get(PA_PATHNAME)
        chosen = None
        for link in down.links:
            peer_router, peer_service = link.peer_of(down)
            if target_name is None or peer_router.name == target_name:
                chosen = (peer_router, peer_service)
                break
        if chosen is None:
            return None, None  # PA_PATHNAME named a router we don't reach
        stage = DisplayStage(self, down)
        return stage, NextHop(chosen[0], chosen[1], attrs)

    def demux(self, msg: Msg, service: Optional[Service],
              offset: int = 0) -> DemuxResult:
        return DemuxResult.drop(f"{self.name}: display does not classify")
