"""Central cost-model parameters (calibrated once, used everywhere).

All macro experiments run in virtual time on a model of the paper's
machine (300 MHz Alpha 21064).  The constants below are the *entire*
calibration surface; EXPERIMENTS.md documents which were fitted to the
paper's Table 1 Scout column and which are a-priori estimates.  Everything
downstream (Linux-vs-Scout ratios, Table 2 interference, EDF results) is a
prediction of the model, not a fit.

Units: microseconds (``_US``), cycles (``_CYCLES``), or per-unit rates.
"""

# --------------------------------------------------------------------------
# Machine
# --------------------------------------------------------------------------

#: CPU clock of the paper's Alpha 21064.
CPU_MHZ = 300.0

# --------------------------------------------------------------------------
# Interrupts and classification (Scout kernel)
# --------------------------------------------------------------------------

#: Hardware interrupt entry/exit + DMA ring bookkeeping per received frame.
IRQ_OVERHEAD_US = 2.0

#: Scout packet classification per router hop (the demux chain).  Four
#: hops for a UDP packet lands at ~4.4 us, matching Section 3.6's "less
#: than 5 us" claim.
CLASSIFY_PER_HOP_US = 1.1

#: Dropping a packet at the adapter once classification says it is not
#: wanted (early discard, Section 4.4).
EARLY_DROP_US = 0.5

# --------------------------------------------------------------------------
# Per-layer protocol processing (both kernels; Scout pays these inside the
# path, Linux pays them at softirq time)
# --------------------------------------------------------------------------

ETH_PROC_US = 3.0      #: Ethernet header handling per packet
IP_PROC_US = 6.0       #: IP header handling per packet (no fragmentation)
IP_FRAG_PER_FRAG_US = 4.0   #: extra per fragment emitted/reassembled
UDP_PROC_US = 4.0      #: UDP header handling per packet
MFLOW_PROC_US = 4.0    #: MFLOW sequencing/window bookkeeping per packet
ICMP_PROC_US = 5.0     #: ICMP echo processing per packet
TCP_PROC_US = 9.0      #: simplified TCP per-segment processing

#: Touching payload bytes (checksum) costs this per byte when enabled.
CHECKSUM_US_PER_BYTE = 0.004

# --------------------------------------------------------------------------
# MPEG decode + display cost model (fitted to Table 1's Scout column; see
# EXPERIMENTS.md for the fit).  Decode cost correlates with frame size in
# bits — the Section 4.4 admission-control observation — plus a per-
# macroblock floor; display cost is dithering+blit per pixel.
# --------------------------------------------------------------------------

DECODE_US_PER_MACROBLOCK = 20.0
DECODE_US_PER_BIT = 0.133
DISPLAY_US_PER_PIXEL = 0.05

# --------------------------------------------------------------------------
# Linux-like baseline kernel structure costs
# --------------------------------------------------------------------------

#: Kernel/user boundary crossing (read()/recvfrom() syscall).
LINUX_SYSCALL_US = 20.0

#: Copying packet payload between kernel and user space, per byte.
LINUX_COPY_US_PER_BYTE = 0.01

#: Kernel protocol processing beyond the hardware IRQ, charged per packet
#: at softirq (i.e. ahead of all user work) regardless of the packet's
#: importance — the structural difference Table 2 exposes.
LINUX_SOFTIRQ_US = 15.0

#: Process context switch.
LINUX_CSWITCH_US = 25.0

#: The baseline's general-purpose interrupt entry/exit is heavier than
#: Scout's streamlined one (full register save + generic dispatch through
#: PALcode on the Alpha).
LINUX_IRQ_OVERHEAD_US = 15.0

#: Driver-level transmit setup when the kernel originates a packet
#: (ICMP replies, window advertisements).
LINUX_TX_DRIVER_US = 15.0

#: In-kernel ICMP echo service beyond generic IP receive: checksum both
#: ways, reply construction with payload copy.
LINUX_ICMP_PROC_US = 25.0

#: The decoded frame must be handed to the window system: one extra copy
#: of the dithered frame (2 bytes/pixel) plus two context switches.  This
#: is the dominant structural cost behind the Table 1 gap.
LINUX_FRAME_COPY_US_PER_BYTE = 0.022
LINUX_DISPLAY_BYTES_PER_PIXEL = 2
LINUX_DISPLAY_CSWITCHES = 2

# --------------------------------------------------------------------------
# Network
# --------------------------------------------------------------------------

ETH_MTU = 1500                 #: Ethernet MTU in bytes
ETH_HEADER_BYTES = 14
ETH_BANDWIDTH_MBPS = 10.0      #: the paper predates fast Ethernet on Scout
ETH_LINK_LATENCY_US = 10.0     #: one-way propagation + hub latency (LAN)

#: Remote-host agent service time (video source / ping sender reacting to
#: a packet).  These hosts are not CPU-modeled; they just take a moment.
REMOTE_HOST_SERVICE_US = 30.0

#: ping -f behaviour: send a new request on every reply, or at this
#: fallback interval when replies stop coming (classic flood ping sends
#: at least 100 packets per second).
PING_FLOOD_FALLBACK_US = 10_000.0

#: Per-packet forwarding cost at a router hop (TTL decrement, route
#: lookup, header rewrite) — the data-path budget of a software router.
FWD_PROC_US = 6.0
#: Extra cost per fragment a forwarding hop emits when it must split a
#: too-big datagram for a smaller egress MTU.
FWD_FRAG_PER_FRAG_US = 4.0
#: Cost of composing an ICMP error (Fragmentation Needed, Time Exceeded)
#: at a forwarding hop.
FWD_ICMP_ERROR_US = 5.0

#: Smallest MTU PMTUD will believe from a Fragmentation Needed message
#: (RFC 791's minimum datagram size every host must accept).
IP_MIN_MTU = 68

#: Reassembly also pays a copy per byte when the datagram completes —
#: the memcpy that builds the contiguous datagram from its pieces.
REASSEMBLY_US_PER_BYTE = 0.008

# --------------------------------------------------------------------------
# Robustness: timeouts, retries, watchdog (virtual-time budgets)
# --------------------------------------------------------------------------

#: IP reassembly timeout (RFC 791 suggests seconds; the simulated LAN is
#: fast, so a shorter budget keeps experiments snappy while still being
#: orders of magnitude above one frame's worth of fragments).
IP_REASSEMBLY_TIMEOUT_US = 2_000_000.0

#: TCP retransmission: initial RTO before any RTT sample exists, and the
#: clamp range applied to the Jacobson SRTT/RTTVAR estimate.  Karn-style
#: exponential backoff doubles the RTO per retransmission up to the max.
TCP_INITIAL_RTO_US = 200_000.0
TCP_MIN_RTO_US = 10_000.0
TCP_MAX_RTO_US = 4_000_000.0

#: Give up on a segment after this many retransmissions.
TCP_MAX_RETRIES = 8

#: Out-of-order segments buffered per TCP stage before the newest is shed.
TCP_REORDER_BUFFER = 64

#: ARP request retry schedule: first retry after the timeout, then
#: exponential backoff, giving up after the retry budget.
ARP_REQUEST_TIMEOUT_US = 50_000.0
ARP_MAX_RETRIES = 4

#: Path watchdog defaults: sample heartbeats every check interval; declare
#: a stall when demand advances but progress stays flat for the budget.
WATCHDOG_CHECK_INTERVAL_US = 50_000.0
WATCHDOG_STALL_BUDGET_US = 200_000.0

#: Watchdog repair backoff: first rebuild after the base delay, doubling
#: per consecutive failure up to the cap.
WATCHDOG_BACKOFF_BASE_US = 10_000.0
WATCHDOG_BACKOFF_MAX_US = 1_000_000.0

#: Rebuild cool-down, as a multiple of the watchdog's stall budget:
#: however the stall clock is provoked, the watchdog never tears a path
#: down twice within ``factor * stall_budget`` — the guard that keeps
#: adversarially phased arrivals from inducing a rebuild storm.
WATCHDOG_MIN_REBUILD_FACTOR = 2.0

#: Video source window probe: when the MFLOW window stays closed this
#: long (advertisements lost, or the receiving path being rebuilt), the
#: source forces one packet through anyway — the analogue of TCP's
#: persist timer, breaking the wadv/data deadlock after a path rebuild.
MFLOW_PROBE_TIMEOUT_US = 100_000.0

# --------------------------------------------------------------------------
# Display refresh
# --------------------------------------------------------------------------

#: Vertical-sync frequency of the framebuffer (Hz).
VSYNC_HZ = 60.0
