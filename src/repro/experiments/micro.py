"""E4 (Section 3.6): path micro-costs, measured on the real implementation.

"A path to transmit and receive UDP packets consists of six stages.
Creating such a path on a 300MHz Alpha takes on the order of 200us ...
The path object itself is about 300 bytes long and each stage is on the
order of 150 bytes in size (including all the interfaces).  The first
(unoptimized) implementation of the Scout classification scheme is
already able to demultiplex a UDP packet in less than 5us."

Two kinds of numbers come out of this module:

* **real wall-clock timings** of this library's ``path_create`` and
  ``classify`` (via pytest-benchmark) — we are running Python on modern
  hardware, so absolute values differ from the Alpha's, but they verify
  the operations are lightweight and scale as the paper describes;
* **modeled C footprints** (``Path.modeled_size()``), which reproduce the
  paper's byte counts directly.
"""

from __future__ import annotations

from typing import NamedTuple

from ..core.attributes import PA_NET_PARTICIPANTS, Attrs
from ..core.graph import RouterGraph
from ..core.message import Msg
from ..core.path import Path
from ..core.path_create import path_create, path_delete
from ..net.arp import ArpRouter
from ..net.common import PA_LOCAL_PORT
from ..net.eth import EthRouter
from ..net.ip import IpRouter
from ..net.packets import build_udp_frame
from ..net.testrouter import TestRouter
from ..net.udp import UdpRouter
from ..net.addresses import EthAddr, IpAddr

#: Paper reference values.
PAPER_PATH_CREATE_US = 200.0
PAPER_CLASSIFY_US = 5.0
PAPER_PATH_BYTES = 300
PAPER_STAGE_BYTES = 150
PAPER_UDP_PATH_STAGES = 6  # four interior stages + the two queue-managing ends

LOCAL_MAC = "02:00:00:00:00:01"
LOCAL_IP = "10.0.0.1"
REMOTE_MAC = "02:00:00:00:00:02"
REMOTE_IP = "10.0.0.2"


class Fig7Stack:
    """The Figure 7 configuration: TEST over UDP over IP over ETH."""

    def __init__(self) -> None:
        self.graph = RouterGraph()
        self.eth = self.graph.add(EthRouter("ETH", mac=LOCAL_MAC))
        self.arp = self.graph.add(ArpRouter("ARP"))
        self.ip = self.graph.add(IpRouter("IP", addr=LOCAL_IP))
        self.udp = self.graph.add(UdpRouter("UDP"))
        self.test = self.graph.add(TestRouter("TEST"))
        self.graph.connect("IP.down", "ETH.up")
        self.graph.connect("IP.res", "ARP.resolver")
        self.graph.connect("ARP.down", "ETH.up")
        self.graph.connect("UDP.down", "IP.up")
        self.graph.connect("TEST.down", "UDP.up")
        self.arp.add_entry(REMOTE_IP, REMOTE_MAC)
        self.graph.boot()

    def create_udp_path(self, local_port: int = 0) -> Path:
        """One pathCreate over the whole stack (the timed operation)."""
        attrs = Attrs({PA_NET_PARTICIPANTS: (REMOTE_IP, 7000)})
        if local_port:
            attrs[PA_LOCAL_PORT] = local_port
        return path_create(self.test, attrs)

    def udp_frame(self, dport: int, payload: bytes = b"x" * 64) -> bytes:
        """A wire frame addressed at the bound port (the classified input)."""
        return build_udp_frame(EthAddr(REMOTE_MAC), EthAddr(LOCAL_MAC),
                               IpAddr(REMOTE_IP), IpAddr(LOCAL_IP),
                               7000, dport, payload)


class MicroReport(NamedTuple):
    udp_path_stages: int
    path_modeled_bytes: int
    per_stage_modeled_bytes: float
    classify_hops: int


def measure_structure() -> MicroReport:
    """The structural numbers (deterministic, no timing involved)."""
    stack = Fig7Stack()
    path = stack.create_udp_path(local_port=6100)
    per_stage = (path.modeled_size() - Path.MODELED_BYTES) / len(path)
    # Count classification hops for a UDP packet.
    from ..core.classify import ClassifierStats, classify

    stats = ClassifierStats()
    msg = Msg(stack.udp_frame(6100))
    found = classify(stack.eth, msg, stats=stats)
    assert found is path
    hops = stats.refinements + 1
    report = MicroReport(
        # interior stages + the two queue-managing extreme ends the paper
        # includes in its count of six
        udp_path_stages=len(path) + 2,
        path_modeled_bytes=Path.MODELED_BYTES,
        per_stage_modeled_bytes=per_stage,
        classify_hops=hops,
    )
    path_delete(path)
    return report


def format_micro(report: MicroReport, create_us: float = float("nan"),
                 classify_us: float = float("nan")) -> str:
    lines = [
        "E4 (Sec 3.6): path micro-costs (measured vs paper)",
        f"  UDP path stages:       {report.udp_path_stages}   "
        f"(paper: {PAPER_UDP_PATH_STAGES})",
        f"  path object bytes:     {report.path_modeled_bytes}   "
        f"(paper: ~{PAPER_PATH_BYTES})",
        f"  per-stage bytes:       {report.per_stage_modeled_bytes:.0f}   "
        f"(paper: ~{PAPER_STAGE_BYTES})",
        f"  classify hops:         {report.classify_hops}",
        f"  path_create wall time: {create_us:.1f} us   "
        f"(paper on 300MHz Alpha: ~{PAPER_PATH_CREATE_US:.0f} us)",
        f"  classify wall time:    {classify_us:.2f} us   "
        f"(paper on 300MHz Alpha: <{PAPER_CLASSIFY_US:.0f} us)",
    ]
    return "\n".join(lines)
