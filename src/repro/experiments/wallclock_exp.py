"""Wall-clock experiment: executor parity and the virtual/real bridge.

The table-producing companion to ``benchmarks/bench_wallclock.py``:
drive the same warm multi-flow UDP workload through the deterministic
scheduler and the asyncio executor (DESIGN.md §18) and report, per
burst size, whether delivery and the drop books stayed byte-identical,
how much virtual CPU the load charged, and how that charge relates to
the real seconds the asyncio executor took.  When loopback sockets are
available a final row drives the socket backend end-to-end and shows
its exact reconciliation (accepted = delivered + dropped).
"""

from __future__ import annotations

import asyncio
import socket
import time
from typing import TYPE_CHECKING, List, NamedTuple, Optional

from ..net.addresses import EthAddr, IpAddr
from ..net.packets import build_udp_frame

if TYPE_CHECKING:  # repro.api imports this package: resolve Scout lazily
    from ..api import Scout

FLOWS = 4
SINK_PORT = 6100
BURST_SIZES = (64, 192, 384)
BATCH = 16

LOCAL_MAC = EthAddr("02:00:00:00:00:01")
LOCAL_IP = IpAddr("10.0.0.1")
REMOTE_MAC = EthAddr("02:00:00:00:00:02")
REMOTE_IP = IpAddr("10.0.0.2")


class WallclockRun(NamedTuple):
    frames: int
    delivered: int
    drops: int
    byte_identical: bool
    virtual_cpu_us: float
    aio_wall_s: float
    sim_wall_s: float


class LoopbackRun(NamedTuple):
    sent: int
    device_rx: int
    delivered: int
    dropped: int
    reconciled: bool
    wall_s: float


def _scout(**kwargs) -> "Scout":
    from ..api import Scout
    return Scout(**kwargs)


def _workload(total: int) -> List[bytes]:
    frames = []
    for seq in range(total):
        flow = seq % FLOWS
        frames.append(build_udp_frame(
            REMOTE_MAC, LOCAL_MAC, REMOTE_IP, LOCAL_IP,
            7000 + flow, SINK_PORT + flow,
            b"wc%02d-%06d" % (flow, seq)))
    return frames


def _setup(scout: "Scout", drops: List[str]) -> None:
    scout.kernel.drop_hook = lambda msg, category: drops.append(category)
    scout.add_peer(REMOTE_IP, REMOTE_MAC)
    for flow in range(FLOWS):
        scout.kernel.start_udp_sink(SINK_PORT + flow,
                                    (str(REMOTE_IP), 7000 + flow),
                                    batch=BATCH, inq_len=256)


def _books(scout: "Scout", drops: List[str]) -> dict:
    streams: dict = {}
    for msg in scout.kernel.test.received:
        payload = msg.to_bytes()
        streams.setdefault(payload[:4], []).append(payload)
    return {"streams": streams, "drops": sorted(drops),
            "bytes": scout.kernel.test.bytes_received}


def run_wallclock(burst_sizes=BURST_SIZES) -> List[WallclockRun]:
    runs = []
    for total in burst_sizes:
        frames = _workload(total)

        sim_drops: List[str] = []
        sim_started = time.perf_counter()
        with _scout(seed=9, udp_sink=True, display=False) as scout:
            _setup(scout, sim_drops)
            scout.kernel.rx_burst(frames)
            scout.world.run_until_idle()
            sim_books = _books(scout, sim_drops)
        sim_wall = time.perf_counter() - sim_started

        async def drive():
            drops: List[str] = []
            started = time.perf_counter()
            async with _scout(seed=9, executor="asyncio",
                              udp_sink=True) as scout:
                _setup(scout, drops)
                scout.kernel.rx_burst(frames)
                await scout.settle()
                snap = scout.wallclock()
                return (_books(scout, drops),
                        time.perf_counter() - started, snap)

        aio_books, aio_wall, snap = asyncio.run(drive())
        delivered = sum(map(len, aio_books["streams"].values()))
        runs.append(WallclockRun(
            frames=total,
            delivered=delivered,
            drops=len(aio_books["drops"]),
            byte_identical=aio_books == sim_books,
            virtual_cpu_us=snap["virtual_cpu_s"] * 1e6,
            aio_wall_s=aio_wall,
            sim_wall_s=sim_wall))
    return runs


def run_loopback(sent: int = 120) -> Optional[LoopbackRun]:
    """Socket-backend reconciliation row; ``None`` if no loopback."""
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        probe.bind(("127.0.0.1", 0))
        probe.close()
    except OSError:
        return None

    async def drive():
        async with _scout(seed=9, backend="socket",
                          executor="asyncio") as scout:
            drops: List[str] = []
            scout.kernel.drop_hook = \
                lambda msg, category: drops.append(category)
            sender = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            sender.bind(("127.0.0.1", 0))
            scout.add_peer(REMOTE_IP, REMOTE_MAC, sender.getsockname())
            scout.kernel.start_udp_sink(SINK_PORT, (str(REMOTE_IP), 7000),
                                        batch=BATCH, inq_len=256)
            started = time.perf_counter()
            for seq in range(sent):
                sender.sendto(build_udp_frame(
                    REMOTE_MAC, LOCAL_MAC, REMOTE_IP, LOCAL_IP,
                    7000, SINK_PORT, b"loop-%06d" % seq),
                    scout.device.address)
            loop = asyncio.get_running_loop()
            deadline = loop.time() + 10.0
            device = scout.device
            while (device.rx_frames + sum(device.drop_ledger().values())
                   < sent or device.pending()
                   or len(scout.kernel.test.received) + len(drops)
                   < device.rx_frames):
                if loop.time() >= deadline:
                    break
                await scout.serve(seconds=0.05)
            wall = time.perf_counter() - started
            sender.close()
            delivered = len(scout.kernel.test.received)
            return LoopbackRun(
                sent=sent,
                device_rx=device.rx_frames,
                delivered=delivered,
                dropped=len(drops) + sum(device.drop_ledger().values()),
                reconciled=(device.rx_frames == delivered + len(drops)),
                wall_s=wall)

    return asyncio.run(drive())


def format_wallclock(runs: List[WallclockRun],
                     loopback: Optional[LoopbackRun]) -> str:
    lines = [
        "Wall-clock edge: asyncio executor vs deterministic scheduler",
        "(same kernel, same bodies; DESIGN.md §18)",
        "",
        f"{'frames':>7} {'delivered':>10} {'drops':>6} {'identical':>10} "
        f"{'virt cpu us':>12} {'aio wall s':>11} {'sim wall s':>11}",
    ]
    for run in runs:
        lines.append(
            f"{run.frames:>7} {run.delivered:>10} {run.drops:>6} "
            f"{'yes' if run.byte_identical else 'NO':>10} "
            f"{run.virtual_cpu_us:>12.0f} {run.aio_wall_s:>11.4f} "
            f"{run.sim_wall_s:>11.4f}")
    lines.append("")
    if loopback is None:
        lines.append("socket loopback: skipped (no loopback sockets)")
    else:
        lines.append(
            f"socket loopback: sent={loopback.sent} "
            f"device_rx={loopback.device_rx} "
            f"delivered={loopback.delivered} dropped={loopback.dropped} "
            f"reconciled={'yes' if loopback.reconciled else 'NO'} "
            f"wall={loopback.wall_s:.3f}s")
    lines.append("")
    lines.append("identical = delivered streams and drop books are "
                 "byte-identical across executors; reconciled = every "
                 "frame the socket device accepted is delivered or in "
                 "a drop ledger.")
    return "\n".join(lines)
