"""Shard-fabric experiment: dispatch balance and merged-book exactness.

The deterministic (threads-mode) companion to
``benchmarks/bench_shard.py``: drive the same warm multi-flow UDP
workload through fabrics of 1, 2, and 4 shards and report, per scale,
how the flow hash spread the flows, what the merged ledger counted, and
whether the books reconciled exactly against every shard kernel's own
accounting (DESIGN.md §17).  Wall-clock speedup is the benchmark's job;
this table is about the *semantics* being scale-invariant — delivered
totals and per-flow streams must not move as the shard count does.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Sequence

from ..faults.adversary import DELIVERED
from ..net.addresses import EthAddr, IpAddr
from ..net.packets import build_udp_frame
from ..shard import ShardedKernel

FLOWS = 12
SINK_PORT = 6100
FRAMES_PER_FLOW = 40
OFFERS = 3


class ShardRun(NamedTuple):
    shards: int
    flows_per_shard: List[int]
    injected: int
    delivered: int
    flow_streams: int
    reconciled: bool
    stream_digest: int        # order-sensitive hash over all flow streams


def _workload(offer_index: int) -> List[bytes]:
    frames = []
    sequence = offer_index * FLOWS * FRAMES_PER_FLOW
    for flow in range(FLOWS):
        for _ in range(FRAMES_PER_FLOW):
            frames.append(bytes(build_udp_frame(
                EthAddr("02:00:00:00:00:02"), EthAddr("02:00:00:00:00:01"),
                IpAddr("10.0.0.2"), IpAddr("10.0.0.1"),
                7000 + flow, SINK_PORT + flow,
                b"flow%02d-%06d" % (flow, sequence))))
            sequence += 1
    return frames


def _digest(flow_streams: Dict[bytes, List[bytes]]) -> int:
    import zlib
    acc = 0
    for key in sorted(flow_streams):
        acc = zlib.crc32(key, acc)
        for payload in flow_streams[key]:
            acc = zlib.crc32(payload, acc)
    return acc


def run_shard(shard_counts: Sequence[int] = (1, 2, 4)) -> List[ShardRun]:
    runs = []
    ports = tuple(SINK_PORT + flow for flow in range(FLOWS))
    for shards in shard_counts:
        fabric = ShardedKernel(shards=shards, mode="threads", ports=ports,
                               batch=8, inq_len=2 * FRAMES_PER_FLOW)
        for offer_index in range(OFFERS):
            fabric.offer(_workload(offer_index))
        books = fabric.finish()
        flows_per_shard = [len(fabric.dispatcher.flows_on_shard[s])
                           for s in range(shards)]
        counts = books.ledger.counts()
        runs.append(ShardRun(
            shards=shards,
            flows_per_shard=flows_per_shard,
            injected=books.reconciliation["injected"],
            delivered=counts.get(DELIVERED, 0),
            flow_streams=len(fabric.flow_streams),
            reconciled=books.ok,
            stream_digest=_digest(fabric.flow_streams)))
    return runs


def format_shard(runs: List[ShardRun]) -> str:
    lines = [
        "Sharded kernel fabric: scale-invariant books (threads mode)",
        f"{FLOWS} flows x {OFFERS} offers x {FRAMES_PER_FLOW} frames",
        "",
        f"{'shards':>6}  {'flows/shard':>14}  {'injected':>8}  "
        f"{'delivered':>9}  {'reconciled':>10}  {'stream digest':>13}",
    ]
    for run in runs:
        spread = "+".join(str(n) for n in run.flows_per_shard)
        lines.append(
            f"{run.shards:>6}  {spread:>14}  {run.injected:>8}  "
            f"{run.delivered:>9}  {'exact' if run.reconciled else 'FAIL':>10}"
            f"  {run.stream_digest:#013x}")
    digests = {run.stream_digest for run in runs}
    lines.append("")
    lines.append("per-flow payload streams "
                 + ("IDENTICAL across shard counts"
                    if len(digests) == 1 else "DIVERGE (BUG)"))
    return "\n".join(lines)
