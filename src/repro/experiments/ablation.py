"""E8: ablations of the design choices DESIGN.md calls out.

* **Early segregation** — the mechanism behind Table 2, isolated: sweep a
  *fixed-rate* ICMP blaster against (a) Scout as designed (classified at
  interrupt time, served by a lower-priority path), (b) Scout with
  ``inline_icmp`` (echo served at interrupt level, i.e. no early
  segregation), and (c) the Linux baseline.  Only (a) should shrug the
  load off.

* **ALF packetization** — Section 4.1's framing argument, isolated: the
  same clip packetized with an integral number of macroblocks per packet
  versus as a raw byte stream.  Non-ALF forces the decoder to buffer
  partial frames ("undesirable queueing between MPEG and MFLOW") and
  concentrates decode CPU into per-frame bursts.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from ..mpeg.clips import NEPTUNE, ClipProfile, synthesize_clip
from ..sim.world import POLICY_RR
from .testbed import Testbed, frames_budget


class SegregationPoint(NamedTuple):
    system: str
    flood_pps: float
    fps: float
    echo_load_cpu_pct: float


def measure_segregation(system: str, flood_pps: float,
                        profile: ClipProfile = NEPTUNE,
                        nframes: Optional[int] = None,
                        seed: int = 0) -> SegregationPoint:
    if nframes is None:
        nframes = frames_budget(profile, default_cap=250)
    testbed = Testbed(seed=seed)
    source = testbed.add_video_source(profile, dst_port=6100, seed=seed,
                                      nframes=nframes)
    if flood_pps > 0:
        testbed.add_flooder(self_clocked=False,
                            fallback_us=1_000_000.0 / flood_pps)
    if system == "scout":
        kernel = testbed.build_scout(rate_limited_display=False)
        session = kernel.start_video(profile, (str(source.ip), 7200),
                                     local_port=6100, policy=POLICY_RR)
    elif system == "scout-no-segregation":
        kernel = testbed.build_scout(rate_limited_display=False,
                                     inline_icmp=True)
        session = kernel.start_video(profile, (str(source.ip), 7200),
                                     local_port=6100, policy=POLICY_RR)
    elif system == "linux":
        kernel = testbed.build_linux(rate_limited_display=False)
        session = kernel.start_video(profile, (str(source.ip), 7200),
                                     local_port=6100)
    else:
        raise ValueError(f"unknown system {system!r}")
    testbed.start_all()
    testbed.run_until_sources_done(max_seconds=240.0)
    elapsed = max(1e-9, testbed.world.now)
    irq_pct = testbed.world.cpu.interrupt_us / elapsed * 100
    return SegregationPoint(system, flood_pps, session.achieved_fps(),
                            irq_pct)


def run_segregation_sweep(rates_pps: Optional[List[float]] = None,
                          seed: int = 0) -> List[SegregationPoint]:
    if rates_pps is None:
        rates_pps = [0, 1000, 2000, 4000]
    points = []
    for system in ("scout", "scout-no-segregation", "linux"):
        for rate in rates_pps:
            points.append(measure_segregation(system, rate, seed=seed))
    return points


def format_segregation(points: List[SegregationPoint]) -> str:
    lines = [
        "E8a: early segregation ablation — Neptune fps vs fixed-rate ICMP load",
        f"{'system':<24}{'flood pps':>10}{'fps':>8}{'irq cpu%':>10}",
    ]
    for p in points:
        lines.append(f"{p.system:<24}{p.flood_pps:>10.0f}{p.fps:>8.1f}"
                     f"{p.echo_load_cpu_pct:>9.1f}%")
    return "\n".join(lines)


class AlfResult(NamedTuple):
    framing: str
    fps: float
    peak_decoder_buffer_bytes: int
    frames_decoded: int


def measure_alf(alf: bool, profile: ClipProfile = NEPTUNE,
                nframes: Optional[int] = None, seed: int = 0) -> AlfResult:
    if nframes is None:
        nframes = frames_budget(profile, default_cap=250)
    testbed = Testbed(seed=seed)
    clip = synthesize_clip(profile, seed=seed, nframes=nframes, alf=alf)
    source = testbed.add_video_source(clip, dst_port=6100)
    kernel = testbed.build_scout(rate_limited_display=False)
    session = kernel.start_video(profile, (str(source.ip), 7200),
                                 local_port=6100)
    testbed.start_all()
    testbed.run_until_sources_done(max_seconds=240.0)
    decoder = session.path.stage_of("MPEG").decoder
    return AlfResult("ALF" if alf else "byte-stream",
                     session.achieved_fps(),
                     decoder.peak_buffered_bytes,
                     decoder.frames_decoded)


def run_alf_ablation(seed: int = 0) -> List[AlfResult]:
    return [measure_alf(True, seed=seed), measure_alf(False, seed=seed)]


def format_alf(results: List[AlfResult]) -> str:
    lines = [
        "E8b: ALF packetization ablation (Sec 4.1)",
        f"{'framing':<14}{'fps':>8}{'decoded':>9}{'peak MPEG buffering':>21}",
    ]
    for r in results:
        lines.append(f"{r.framing:<14}{r.fps:>8.1f}{r.frames_decoded:>9}"
                     f"{r.peak_decoder_buffer_bytes:>20}B")
    return "\n".join(lines)
