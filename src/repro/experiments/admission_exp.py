"""E6 (Section 4.4): frame-size -> CPU correlation and admission control.

"Our experiments show that there is a good correlation between the
average size of a frame (in bits) and the average amount of CPU time it
takes to decode a frame ... the path execution timings are used to derive
the model parameters, which in turn, are used for admission control."

Phase 1 measures each clip on the running system and fits the linear
model from the paths' own accounting.  Phase 2 plays an admission
scenario: streams are admitted until the predicted CPU is exhausted, and
a stream that does not fit is offered reduced-quality (every-Nth-frame)
playback instead.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Tuple

from ..admission.control import CpuAdmission, FrameCostModel, theoretical_frame_us
from ..core.errors import AdmissionError
from ..mpeg.clips import CANYON, FLOWER, NEPTUNE, PAPER_CLIPS, ClipProfile
from .testbed import Testbed, frames_budget


class ClipSample(NamedTuple):
    clip: str
    avg_frame_bits: float
    measured_frame_us: float
    theoretical_frame_us: float


class AdmissionDecision(NamedTuple):
    request: str
    admitted: bool
    predicted_utilization: float
    committed_after: float
    suggested_skip: Optional[int]


def measure_clip_cost(profile: ClipProfile,
                      nframes: Optional[int] = None,
                      seed: int = 0) -> Tuple[float, float]:
    """Returns (avg frame bits, measured CPU us per frame) from a live run."""
    if nframes is None:
        nframes = frames_budget(profile, default_cap=150)
    testbed = Testbed(seed=seed)
    source = testbed.add_video_source(profile, dst_port=6100, seed=seed,
                                      nframes=nframes)
    kernel = testbed.build_scout(rate_limited_display=False)
    session = kernel.start_video(profile, (str(source.ip), 7200),
                                 local_port=6100)
    testbed.start_all()
    testbed.run_until_sources_done()
    decoder = session.path.stage_of("MPEG").decoder
    frames = max(1, decoder.frames_decoded)
    avg_bits = decoder.bits_decoded / frames
    frame_us = session.path.stats.cycles / testbed.world.cpu.mhz / frames
    return avg_bits, frame_us


def fit_model(seed: int = 0) -> Tuple[FrameCostModel, List[ClipSample]]:
    """Fit the frame-size -> CPU model from all four paper clips."""
    model = FrameCostModel()
    samples = []
    for profile in PAPER_CLIPS:
        bits, micros = measure_clip_cost(profile, seed=seed)
        model.add_sample(bits, profile.pixels, micros)
        samples.append(ClipSample(profile.name, bits, micros,
                                  theoretical_frame_us(profile)))
    model.fit()
    return model, samples


def admission_scenario(model: FrameCostModel,
                       headroom: float = 0.95) -> List[AdmissionDecision]:
    """Admit streams until the CPU is spoken for; offer reduced quality."""
    control = CpuAdmission(model, headroom=headroom)
    decisions = []

    def attempt(profile: ClipProfile, fps: float, count: int = 1,
                take_fallback: bool = False):
        for index in range(count):
            label = f"{profile.name}@{fps:.0f}fps"
            if count > 1:
                label += f" #{index + 1}"
            predicted = control.predicted_utilization(profile, fps)
            try:
                control.admit(profile, fps)
                decisions.append(AdmissionDecision(
                    label, True, predicted, control.committed_utilization,
                    None))
            except AdmissionError:
                skip = control.suggest_skip(profile, fps)
                decisions.append(AdmissionDecision(
                    label, False, predicted, control.committed_utilization,
                    skip))
                if take_fallback and skip is not None:
                    # "The user may choose to view the video with reduced
                    # quality": re-admit at every-Nth-frame playback.
                    control.admit(profile, fps, skip=skip)
                    reduced = control.predicted_utilization(profile, fps,
                                                            skip)
                    decisions.append(AdmissionDecision(
                        f"{label} (1/{skip})", True, reduced,
                        control.committed_utilization, skip))

    # The paper's E3 mix fits: one Neptune at 30fps plus Canyons at 10fps.
    attempt(NEPTUNE, 30.0)
    attempt(CANYON, 10.0, count=4)
    # A full-rate Flower no longer fits; it is admitted at reduced quality
    # with its skipped frames dropped at the adapter (E7).
    attempt(FLOWER, 30.0, take_fallback=True)
    # The remaining Canyons contend for what is left.
    attempt(CANYON, 10.0, count=4)
    return decisions


def format_admission(samples: List[ClipSample], correlation: float,
                     decisions: List[AdmissionDecision]) -> str:
    lines = [
        "E6 (Sec 4.4): frame size vs decode CPU, and admission control",
        f"{'clip':<15}{'avg bits':>10}{'measured us':>13}{'model us':>10}",
    ]
    for s in samples:
        lines.append(f"{s.clip:<15}{s.avg_frame_bits:>10.0f}"
                     f"{s.measured_frame_us:>13.1f}"
                     f"{s.theoretical_frame_us:>10.1f}")
    lines.append(f"correlation(bits, us) = {correlation:.4f}   "
                 "(paper: 'a good correlation')")
    lines.append("")
    lines.append(f"{'request':<22}{'admitted':>9}{'pred util':>11}"
                 f"{'committed':>11}{'fallback':>10}")
    for d in decisions:
        fallback = f"1/{d.suggested_skip}" if d.suggested_skip else "-"
        lines.append(f"{d.request:<22}{str(d.admitted):>9}"
                     f"{d.predicted_utilization:>10.1%}"
                     f"{d.committed_after:>10.1%}{fallback:>10}")
    return "\n".join(lines)
