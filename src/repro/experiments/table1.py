"""Table 1: coarse-grain comparison of Scout and Linux.

"The table lists the maximum decoding rate in frames per second for a
selection of four video clips ... both systems run on the same machine
(a 300MHz 21064 Alpha), use essentially the same MPEG code, and receive
the compressed video over the network."

Procedure per cell: stream the clip at full speed (MFLOW window flow
control is the only throttle), max-rate display mode, measure the
presentation rate over the whole run.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional

from ..mpeg.clips import PAPER_CLIPS, ClipProfile
from .testbed import Testbed, frames_budget

#: The paper's Table 1, fps: clip -> (scout, linux).
PAPER_TABLE1: Dict[str, tuple] = {
    "Flower": (44.7, 37.1),
    "Neptune": (49.9, 39.2),
    "RedsNightmare": (67.1, 55.5),
    "Canyon": (245.9, 183.3),
}


class Table1Row(NamedTuple):
    clip: str
    nframes: int
    scout_fps: float
    linux_fps: float
    paper_scout_fps: float
    paper_linux_fps: float

    @property
    def speedup(self) -> float:
        return self.scout_fps / self.linux_fps if self.linux_fps else 0.0

    @property
    def paper_speedup(self) -> float:
        return self.paper_scout_fps / self.paper_linux_fps


def measure_max_rate(kernel_name: str, profile: ClipProfile,
                     nframes: Optional[int] = None, seed: int = 0) -> float:
    """Maximum decode rate (fps) for one clip on one kernel."""
    if nframes is None:
        nframes = frames_budget(profile)
    testbed = Testbed(seed=seed)
    source = testbed.add_video_source(profile, dst_port=6100, seed=seed,
                                      nframes=nframes)
    if kernel_name == "scout":
        kernel = testbed.build_scout(rate_limited_display=False)
        session = kernel.start_video(profile, (str(source.ip), 7200),
                                     local_port=6100)
    elif kernel_name == "linux":
        kernel = testbed.build_linux(rate_limited_display=False)
        session = kernel.start_video(profile, (str(source.ip), 7200),
                                     local_port=6100)
    else:
        raise ValueError(f"unknown kernel {kernel_name!r}")
    testbed.start_all()
    testbed.run_until_sources_done()
    return session.achieved_fps()


def run_table1(nframes: Optional[int] = None, seed: int = 0) -> List[Table1Row]:
    """Regenerate every row of Table 1."""
    rows = []
    for profile in PAPER_CLIPS:
        budget = nframes if nframes is not None else frames_budget(profile)
        scout_fps = measure_max_rate("scout", profile, budget, seed)
        linux_fps = measure_max_rate("linux", profile, budget, seed)
        paper_scout, paper_linux = PAPER_TABLE1[profile.name]
        rows.append(Table1Row(profile.name, budget, scout_fps, linux_fps,
                              paper_scout, paper_linux))
    return rows


def format_table1(rows: List[Table1Row]) -> str:
    lines = [
        "Table 1: max decode rate [fps]  (measured vs paper)",
        f"{'Video':<15}{'frames':>7}{'Scout':>9}{'(paper)':>9}"
        f"{'Linux':>9}{'(paper)':>9}{'speedup':>9}{'(paper)':>9}",
    ]
    for row in rows:
        lines.append(
            f"{row.clip:<15}{row.nframes:>7}"
            f"{row.scout_fps:>9.1f}{row.paper_scout_fps:>9.1f}"
            f"{row.linux_fps:>9.1f}{row.paper_linux_fps:>9.1f}"
            f"{row.speedup:>8.2f}x{row.paper_speedup:>8.2f}x")
    return "\n".join(lines)
