"""E5 (Section 4.2): sizing the input queue.

"If processing a single packet requires more time than it takes to
request a new packet from the source, then an input queue that can hold
two packets is sufficient ... If the round-trip time (RTT) is greater
than the time to process a packet, then the input queue needs to be two
times the RTT x bandwidth product of the network."

The sweep varies the link RTT and the video path's input-queue capacity
and measures the achieved decode rate.  The predicted sufficient size
uses the paper's own formula with quantities the *system measures about
itself*: the RTT from MFLOW's echoed timestamps and the per-packet
processing time from the Section 4.2 measurement transformation
(``PA_AVG_PROC_TIME``).
"""

from __future__ import annotations

import math
from typing import List, NamedTuple, Optional

from ..core.attributes import PA_AVG_PROC_TIME
from ..mpeg.clips import NEPTUNE, ClipProfile
from .testbed import Testbed


class QueueSizingPoint(NamedTuple):
    latency_us: float
    inq_len: int
    fps: float
    measured_rtt_us: Optional[float]
    measured_proc_us: Optional[float]
    window_stalls: int

    @property
    def predicted_sufficient_inq(self) -> Optional[int]:
        """2 x RTT x consumption-bandwidth, in packets (the paper's rule),
        floored at 2 for the fast-RTT regime."""
        if not self.measured_rtt_us or not self.measured_proc_us:
            return None
        if self.measured_rtt_us <= self.measured_proc_us:
            return 2
        return max(2, math.ceil(2 * self.measured_rtt_us
                                / self.measured_proc_us))


def measure_point(latency_us: float, inq_len: int,
                  profile: ClipProfile = NEPTUNE,
                  nframes: Optional[int] = None,
                  seed: int = 0) -> QueueSizingPoint:
    if nframes is None:
        # The throughput estimate converges within a few hundred frames;
        # this sweep has 12 points, so cap it even under REPRO_FULL.
        nframes = min(250, profile.nframes)
    testbed = Testbed(seed=seed, latency_us=latency_us)
    source = testbed.add_video_source(profile, dst_port=6100, seed=seed,
                                      nframes=nframes)
    kernel = testbed.build_scout(rate_limited_display=False)
    session = kernel.start_video(profile, (str(source.ip), 7200),
                                 local_port=6100, inq_len=inq_len)
    testbed.start_all()
    testbed.run_until_sources_done(max_seconds=240.0)
    proc = session.path.attrs.get(PA_AVG_PROC_TIME)
    return QueueSizingPoint(
        latency_us=latency_us,
        inq_len=inq_len,
        fps=session.achieved_fps(),
        measured_rtt_us=source.avg_rtt_us(),
        measured_proc_us=proc,
        window_stalls=source.window_stalls,
    )


def run_queue_sizing(latencies_us: Optional[List[float]] = None,
                     inq_lens: Optional[List[int]] = None,
                     seed: int = 0) -> List[QueueSizingPoint]:
    if latencies_us is None:
        latencies_us = [100.0, 5_000.0, 20_000.0]
    if inq_lens is None:
        inq_lens = [1, 2, 4, 8, 16, 32]
    points = []
    for latency in latencies_us:
        for inq in inq_lens:
            points.append(measure_point(latency, inq, seed=seed))
    return points


def format_queue_sizing(points: List[QueueSizingPoint]) -> str:
    lines = [
        "E5 (Sec 4.2): input queue sizing — achieved fps vs queue capacity",
        "(the paper's rule: 2 x RTT x bandwidth is sufficient; marked '*')",
        f"{'latency':>9}{'inq':>5}{'fps':>8}{'rtt_us':>9}{'proc_us':>9}"
        f"{'2xRTTxBW':>10}{'stalls':>8}",
    ]
    for p in points:
        predicted = p.predicted_sufficient_inq
        marker = " *" if predicted is not None and p.inq_len >= predicted else ""
        lines.append(
            f"{p.latency_us:>9.0f}{p.inq_len:>5}{p.fps:>8.1f}"
            f"{(p.measured_rtt_us or 0):>9.0f}"
            f"{(p.measured_proc_us or 0):>9.1f}"
            f"{(predicted if predicted is not None else 0):>10}"
            f"{p.window_stalls:>8}{marker}")
    return "\n".join(lines)
