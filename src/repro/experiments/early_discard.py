"""E7 (Section 4.4): early discard for reduced-quality playback.

"If admission control determines that a video cannot be displayed at the
full rate, a user may choose to view the video with reduced quality.  For
example, the user may request that only every third image be displayed.
Thanks to ALF and paths, it is possible to drop packets of skipped frames
as soon as they arrive at the network adapter.  This avoids wasting CPU
cycles at a time when they are at a premium."

The comparison: every-third-frame playback with adapter-level early drop
versus the naive alternative (decode everything, discard after decoding).
Early drop should cut the video's CPU roughly in proportion to the
skipped fraction; the naive version pays full decode cost for frames
nobody sees.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from ..mpeg.clips import NEPTUNE, ClipProfile
from .testbed import Testbed, frames_budget


class EarlyDiscardResult(NamedTuple):
    label: str
    skip: int
    early_drop: bool
    frames_presented: int
    cpu_us_per_presented_frame: float
    total_cpu_s: float
    adapter_drops: int
    decoded_then_skipped: int


def measure(skip: int, early_drop: bool,
            profile: ClipProfile = NEPTUNE,
            nframes: Optional[int] = None, seed: int = 0,
            label: str = "") -> EarlyDiscardResult:
    if nframes is None:
        nframes = frames_budget(profile, default_cap=300)
    testbed = Testbed(seed=seed)
    source = testbed.add_video_source(profile, dst_port=6100, seed=seed,
                                      nframes=nframes)
    kernel = testbed.build_scout(rate_limited_display=False)
    session = kernel.start_video(profile, (str(source.ip), 7200),
                                 local_port=6100, skip=skip,
                                 early_drop_skipped=early_drop)
    testbed.start_all()
    testbed.run_until_sources_done(max_seconds=240.0)
    cpu = testbed.world.cpu
    total_cpu_us = cpu.compute_us + cpu.interrupt_us
    presented = max(1, session.frames_presented)
    return EarlyDiscardResult(
        label=label or f"skip={skip} early_drop={early_drop}",
        skip=skip,
        early_drop=early_drop,
        frames_presented=session.frames_presented,
        cpu_us_per_presented_frame=total_cpu_us / presented,
        total_cpu_s=total_cpu_us / 1e6,
        adapter_drops=kernel.early_drops,
        decoded_then_skipped=session.path.stage_of("MPEG").frames_skipped,
    )


def run_early_discard(skip: int = 3, seed: int = 0
                      ) -> List[EarlyDiscardResult]:
    return [
        measure(1, False, seed=seed, label="full quality"),
        measure(skip, False, seed=seed,
                label=f"1/{skip} quality, naive (decode then discard)"),
        measure(skip, True, seed=seed,
                label=f"1/{skip} quality, early drop at adapter"),
    ]


def format_early_discard(results: List[EarlyDiscardResult]) -> str:
    lines = [
        "E7 (Sec 4.4): early discard of skipped frames' packets",
        f"{'configuration':<42}{'shown':>7}{'cpu/frame':>11}"
        f"{'total cpu':>11}{'adapter':>9}{'wasted':>8}",
        f"{'':<42}{'':>7}{'[us]':>11}{'[s]':>11}{'drops':>9}{'decodes':>8}",
    ]
    for r in results:
        lines.append(
            f"{r.label:<42}{r.frames_presented:>7}"
            f"{r.cpu_us_per_presented_frame:>11.0f}{r.total_cpu_s:>11.2f}"
            f"{r.adapter_drops:>9}{r.decoded_then_skipped:>8}")
    return "\n".join(lines)
