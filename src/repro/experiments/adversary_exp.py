"""Adversarial stability experiment: worst-case traffic vs guarantees.

The chaos experiment asks "does the system survive random misbehaviour";
this one asks the stronger question: "does it keep its guarantees against
an adversary crafting the *worst* admissible arrivals".  A seeded
:class:`~repro.faults.AdversaryInjector` drives one of the built-in
attack strategies against a Figure-7 UDP stack — single path or a
``least_loaded`` :class:`~repro.multipath.PathGroup` — executed by
simulated consumer threads under either EDF or the stride (share-
weighted) policy arbitration, with backpressure shedding at admission
and a watchdog armed on the first member.

Every run ends in a :class:`~repro.faults.StabilityVerdict`, the
machine-checked proof artifact:

* **bounded queues** — the sup-over-time depth of every input queue
  stays under the configuration's bound (the shedder's occupancy bound,
  or the closed-form ``(rho, w)`` backlog bound when shedding is off);
* **no starvation** — every admitted flow progresses within the horizon,
  and a victim thread on the *other* scheduling policy proves the stride
  shares still bite;
* **ledger reconciliation** — every injected serial reaches exactly one
  terminal category (delivered / shed / adversary_overflow / end_of_run)
  with zero leaks and zero double counts, and the
  :class:`~repro.observe.MetricsRegistry` totals agree with the ledger.

Two runs with the same seed produce byte-identical digests (the seed
audit in ``tests/faults/test_seed_audit.py`` checks exactly this).
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, NamedTuple, Optional, Sequence

from ..admission import BackpressureShedder
from ..core.classify import classify
from ..core.flowcache import FlowCache
from ..core.message import Msg
from ..core.path import ESTABLISHED
from ..core.stage import BWD
from ..faults.adversary import (
    ADVERSARY_OVERFLOW,
    BACKPRESSURE_SHED,
    DELIVERED,
    END_OF_RUN,
    AdversaryInjector,
    DropLedger,
    StabilityVerdict,
    TargetView,
    VerdictEngine,
    closed_form_depth_bound,
)
from ..faults.plan import AdversarySpec, FaultPlan
from ..faults.watchdog import PathWatchdog
from ..multipath import PathGroup
from ..multipath.policies import LeastLoadedPolicy, bottleneck_depth
from ..net.addresses import EthAddr, IpAddr
from ..net.packets import build_udp_frame
from ..observe import Observatory, StarvationDetector
from ..sim.threads import YIELD, Compute, DequeueBatch, Sleep
from ..sim.world import POLICY_EDF, POLICY_RR, SimWorld
from .micro import Fig7Stack, LOCAL_IP, LOCAL_MAC, REMOTE_IP, REMOTE_MAC

PORT = 6100

#: scheduler name -> (consumer policy, victim policy).  "edf" runs the
#: consumers on EDF with per-message deadlines; "stride" runs them under
#: the share-weighted RR policy.  The victim always lives on the *other*
#: policy, so the stride arbitration between the two is genuinely load-
#: bearing in both configurations.
SCHEDULERS = {
    "edf": (POLICY_EDF, POLICY_RR),
    "stride": (POLICY_RR, POLICY_EDF),
}

#: Counter every terminal accounting site bumps; the run reconciles its
#: per-category totals against the ledger.
OUTCOME_METRIC = "adversary_outcomes_total"


class AdversaryRunResult(NamedTuple):
    """One adversarial run: the verdict plus the numbers behind it."""

    strategy: str
    scheduler: str
    seed: int
    members: int
    verdict: StabilityVerdict
    #: SHA-256 over the granted schedule + rendered verdict — the
    #: determinism witness two same-seed runs must share byte-for-byte.
    digest: str
    injected: int
    delivered: int
    shed: int
    overflowed: int
    end_of_run: int
    max_queue_depth: int
    depth_bound: int
    #: MetricsRegistry totals match the ledger category by category.
    metrics_reconciled: bool
    watchdog_rebuilds: int
    watchdog_deferrals: int
    policy_switches: int
    cache_hits: int
    cache_misses: int

    @property
    def ok(self) -> bool:
        return self.verdict.ok and self.metrics_reconciled


def run_adversary(strategy: str = "deadline_cliff", scheduler: str = "edf",
                  seed: int = 0, members: int = 2,
                  rho_per_us: float = 0.04, w: int = 24,
                  duration_us: float = 120_000.0, flows: int = 4,
                  service_us: float = 40.0, queue_capacity: int = 64,
                  horizon_us: float = 40_000.0, shed: bool = True,
                  batch: int = 8, hysteresis: int = 2,
                  cache_capacity: int = 32) -> AdversaryRunResult:
    """Run one strategy against one scheduler; return the verdict."""
    if scheduler not in SCHEDULERS:
        raise ValueError(f"unknown scheduler {scheduler!r}; "
                         f"known: {sorted(SCHEDULERS)}")
    consumer_policy, victim_policy = SCHEDULERS[scheduler]
    spec = AdversarySpec(strategy=strategy, rho_per_us=rho_per_us, w=w,
                         duration_us=duration_us, flows=flows)
    plan = FaultPlan(name=f"adv_{strategy}", seed=seed, adversary=spec)
    world = SimWorld(seed=seed)
    observatory = Observatory(world.engine)
    metrics = observatory.metrics
    stack = Fig7Stack()

    group: Optional[PathGroup] = None
    if members > 1:
        group = PathGroup(LeastLoadedPolicy(hysteresis=hysteresis),
                          name=f"adv-{strategy}")
        paths = [group.add(stack.create_udp_path(PORT))
                 for _ in range(members)]
    else:
        paths = [stack.create_udp_path(PORT)]
    inqs = []
    for path in paths:
        inq = path.input_queue(BWD)
        inq.maxlen = queue_capacity
        inq.overflow_reason = ADVERSARY_OVERFLOW
        inqs.append(inq)

    cache = FlowCache(capacity=cache_capacity)
    ledger = DropLedger()
    starvation = StarvationDetector(world.engine, horizon_us,
                                    observatory=observatory).start()
    shedder = BackpressureShedder(inqs) if shed else None

    # Drop accounting: one listener closes every discarded serial under
    # the queue's reported reason — overflow rejections (which the queues
    # above report as ``adversary_overflow``), the end-of-run scrub, and
    # any watchdog-rebuild drain all land in the ledger through here.
    def on_drop(path):
        def listener(queue, item, reason):
            serial = item.meta.get("adv_serial") if hasattr(item, "meta") \
                else None
            if serial is None:
                return
            ledger.account(serial, reason)
            metrics.counter(OUTCOME_METRIC, category=reason).inc()
            if reason in (ADVERSARY_OVERFLOW, END_OF_RUN):
                # Teardown drains already route through path.note_drop;
                # these two reasons are noted by nobody else.
                path.note_drop(item, "adversarial arrival discarded",
                               reason)
        return listener

    for path, inq in zip(paths, inqs):
        inq.on_drop(on_drop(path))

    # Consumers: one batch-draining service thread per member.  The
    # explicit yield between batches is the cooperative dispatch point —
    # scheduling is non-preemptive, so a consumer whose queue never
    # empties under overload would otherwise hold the CPU forever and
    # the starvation guarantee would be the adversary's for free.
    def consumer(path, inq):
        while True:
            msgs = yield DequeueBatch(inq, batch)
            for msg in msgs:
                yield Compute(service_us)
                ledger.account(msg.meta["adv_serial"], DELIVERED)
                metrics.counter(OUTCOME_METRIC, category=DELIVERED).inc()
                starvation.on_deliver(msg.meta["adv_flow"])
                path.note_progress()
            yield YIELD

    if consumer_policy == POLICY_EDF:
        def edf_wakeup(path, thread):
            inq = path.input_queue(BWD)
            head = inq.peek() if len(inq) else None
            deadline = None if head is None \
                else head.meta.get("adv_deadline")
            thread.deadline = deadline if deadline is not None \
                else world.engine.now + horizon_us
        for path in paths:
            path.wakeup = edf_wakeup
    for path, inq in zip(paths, inqs):
        world.spawn(consumer(path, inq), name=f"consume#{path.pid}",
                    policy=consumer_policy, path=path)

    # The victim: a periodic thread on the other policy whose own wakeup
    # gaps prove the stride shares still bite under the attack.
    victim_period = horizon_us / 8.0

    def victim():
        last = world.engine.now
        while True:
            yield Compute(service_us / 4.0)
            now = world.engine.now
            starvation.note_gap("victim", now - last)
            last = now
            yield Sleep(victim_period)

    world.spawn(victim(), name="victim", policy=victim_policy)

    # Watchdog on the first member, wired to the hardening under test:
    # crafted arrival phase must produce deferrals, never rebuild storms.
    watchdog = PathWatchdog(
        world.engine, paths[0],
        rebuild=lambda: stack.create_udp_path(PORT),
        observatory=observatory, flow_cache=cache, group=group,
        overload_check=(lambda: shedder.shedding) if shedder else None,
    ).start()

    # Injection: admission -> classification -> bounded enqueue.
    flow_on_member: Dict[int, int] = {}

    def inject(event):
        ledger.inject(event.serial)
        sport = 7000 + (event.flow % 50_000)
        frame = build_udp_frame(
            EthAddr(REMOTE_MAC), EthAddr(LOCAL_MAC),
            IpAddr(REMOTE_IP), IpAddr(LOCAL_IP),
            sport, PORT, b"a" * spec.payload_bytes)
        msg = Msg(frame, meta={"adv_serial": event.serial,
                               "adv_flow": event.flow})
        if event.deadline_us is not None:
            msg.meta["adv_deadline"] = event.deadline_us
        if shedder is not None and not shedder.admit():
            ledger.account(event.serial, BACKPRESSURE_SHED)
            metrics.counter(OUTCOME_METRIC,
                            category=BACKPRESSURE_SHED).inc()
            return
        path = classify(stack.eth, msg, cache=cache)
        if path is None:
            ledger.account(event.serial, "unclassified")
            metrics.counter(OUTCOME_METRIC, category="unclassified").inc()
            return
        if path.input_queue(BWD).try_enqueue(msg):
            flow_on_member[path.pid] = event.flow
            starvation.on_admit(event.flow)

    view = TargetView(
        now=lambda: world.engine.now,
        member_depths=lambda: [(p.pid, bottleneck_depth(p)) for p in paths
                               if p.state == ESTABLISHED],
        flow_on_member=flow_on_member.get,
        service_us=service_us,
        drain_period_us=batch * service_us,
        cache_capacity=cache.capacity)
    injector = AdversaryInjector(world.engine, spec, plan.rng(),
                                 inject, view).start()

    world.run_for(duration_us + horizon_us)
    starvation.scan()
    starvation.stop()
    watchdog.stop()
    for inq in inqs:
        inq.drain(END_OF_RUN)

    # Verdict: the tightest bound the configuration actually promises.
    if shedder is not None:
        bound = shedder.depth_bound()
    else:
        closed = closed_form_depth_bound(rho_per_us, w, service_us)
        bound = closed if members == 1 and closed is not None \
            else queue_capacity
    engine = VerdictEngine(inqs, ledger, starvation,
                           depth_bound=bound,
                           queue_capacity=queue_capacity)
    verdict = engine.verdict(strategy, scheduler, seed)

    counts = ledger.counts()
    reconciled = all(
        metrics.total(OUTCOME_METRIC, category=category) == count
        for category, count in counts.items())

    digest = hashlib.sha256(
        (injector.schedule_digest() + "|" + verdict.render()).encode()
    ).hexdigest()
    switches = group.policy.switches if group is not None \
        and isinstance(group.policy, LeastLoadedPolicy) else 0
    cache_stats = cache.stats()
    return AdversaryRunResult(
        strategy=strategy, scheduler=scheduler, seed=seed, members=members,
        verdict=verdict, digest=digest,
        injected=ledger.injected,
        delivered=counts.get(DELIVERED, 0),
        shed=counts.get(BACKPRESSURE_SHED, 0),
        overflowed=counts.get(ADVERSARY_OVERFLOW, 0),
        end_of_run=counts.get(END_OF_RUN, 0),
        max_queue_depth=verdict.max_queue_depth,
        depth_bound=bound,
        metrics_reconciled=reconciled,
        watchdog_rebuilds=watchdog.rebuilds,
        watchdog_deferrals=watchdog.overload_deferrals,
        policy_switches=switches,
        cache_hits=cache_stats.get("hits", 0),
        cache_misses=cache_stats.get("misses", 0),
    )


def run_adversary_matrix(strategies: Optional[Sequence[str]] = None,
                         schedulers: Sequence[str] = ("edf", "stride"),
                         seed: int = 0, **kwargs
                         ) -> List[AdversaryRunResult]:
    """Every strategy against every scheduler — the bench matrix."""
    if strategies is None:
        from ..faults.adversary import STRATEGIES
        strategies = sorted(STRATEGIES)
    return [run_adversary(strategy=strategy, scheduler=scheduler,
                          seed=seed, **kwargs)
            for strategy in strategies for scheduler in schedulers]


def format_adversary(results: Sequence[AdversaryRunResult]) -> str:
    lines = [
        "Adversarial stability (DESIGN.md sec 14): "
        "(rho,w)-bounded worst-case traffic vs machine-checked verdicts",
        f"{'strategy':>16}{'sched':>8}{'inj':>6}{'deliv':>7}{'shed':>6}"
        f"{'ovfl':>6}{'depth':>7}{'bound':>7}{'starv':>7}{'leaks':>7}"
        f"{'verdict':>9}",
    ]
    for r in results:
        lines.append(
            f"{r.strategy:>16}{r.scheduler:>8}{r.injected:>6}"
            f"{r.delivered:>7}{r.shed:>6}{r.overflowed:>6}"
            f"{r.max_queue_depth:>7}{r.depth_bound:>7}"
            f"{r.verdict.starved_flows:>7}{r.verdict.leaked:>7}"
            f"{'ok' if r.ok else 'VIOLATED':>9}")
    lines.append(
        f"  all verdicts ok: {all(r.ok for r in results)} "
        f"(bounded depth, zero starved flows, exact ledger, "
        f"metrics reconciled)")
    return "\n".join(lines)
