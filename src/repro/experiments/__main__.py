"""Regenerate every paper table from the command line.

Usage::

    python -m repro.experiments              # capped clip lengths
    REPRO_FULL=1 python -m repro.experiments # the paper's full clips
    python -m repro.experiments table1 e3    # a subset

Experiment ids: table1, table2, e3 (EDF vs RR), e4 (micro), e5 (queue
sizing), e6 (admission), e7 (early discard), e8 (ablations), trace
(per-path observability: hottest spans + metrics for a traced playback),
multipath (path groups + warm pools; an extension beyond the paper),
adversary (worst-case traffic vs stability verdicts), multihop (3-hop
heterogeneous-MTU forwarding with path-MTU discovery), shard (N-kernel
fabric: dispatch balance + merged-book exactness), wallclock (asyncio
executor parity + socket-loopback reconciliation).
"""

from __future__ import annotations

import sys

from . import (
    admission_scenario,
    fit_model,
    format_admission,
    format_adversary,
    format_alf,
    format_early_discard,
    format_edf_rr,
    format_micro,
    format_multihop,
    format_multipath,
    format_shard,
    format_wallclock,
    format_queue_sizing,
    format_segregation,
    format_table1,
    format_table2,
    format_trace,
    measure_structure,
    run_adversary_matrix,
    run_alf_ablation,
    run_early_discard,
    run_loss_amplification,
    run_multihop,
    run_multipath,
    run_pool_churn,
    run_queue_sizing,
    run_queue_sweep,
    run_segregation_sweep,
    run_loopback,
    run_shard,
    run_table1,
    run_wallclock,
    run_table2,
    run_trace,
)


def _table1() -> str:
    return format_table1(run_table1())


def _table2() -> str:
    return format_table2(run_table2())


def _e3() -> str:
    return format_edf_rr(run_queue_sweep(queue_sizes=[16, 128]))


def _e4() -> str:
    return format_micro(measure_structure())


def _e5() -> str:
    return format_queue_sizing(run_queue_sizing(
        latencies_us=[100.0, 10_000.0], inq_lens=[1, 2, 4, 8, 16, 32]))


def _e6() -> str:
    model, samples = fit_model()
    return format_admission(samples, model.correlation(),
                            admission_scenario(model))


def _e7() -> str:
    return format_early_discard(run_early_discard())


def _e8() -> str:
    return (format_segregation(run_segregation_sweep(
        rates_pps=[0, 2000, 4000])) + "\n\n"
        + format_alf(run_alf_ablation()))


def _trace() -> str:
    return format_trace(run_trace())


def _multipath() -> str:
    return format_multipath(run_multipath(), run_pool_churn())


def _adversary() -> str:
    return format_adversary(run_adversary_matrix())


def _multihop() -> str:
    return format_multihop(run_multihop(), run_loss_amplification())


def _shard() -> str:
    return format_shard(run_shard())


def _wallclock() -> str:
    return format_wallclock(run_wallclock(), run_loopback())


EXPERIMENTS = {
    "table1": _table1,
    "table2": _table2,
    "e3": _e3,
    "e4": _e4,
    "e5": _e5,
    "e6": _e6,
    "e7": _e7,
    "e8": _e8,
    "trace": _trace,
    "multipath": _multipath,
    "adversary": _adversary,
    "multihop": _multihop,
    "shard": _shard,
    "wallclock": _wallclock,
}


def main(argv) -> int:
    wanted = argv[1:] or list(EXPERIMENTS)
    unknown = [name for name in wanted if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {unknown}; "
              f"choose from {sorted(EXPERIMENTS)}")
        return 2
    for name in wanted:
        print(f"\n=== {name} " + "=" * (66 - len(name)))
        print(EXPERIMENTS[name]())
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
