"""E3 (Section 4.3): EDF vs single-priority round-robin scheduling.

"This allows Scout to display 8 Canyon movies at a rate of 10 frames per
second, together with a Neptune movie playing at 30 frames per second,
all without missing a single deadline.  In contrast, the same load with
single-priority round-robin scheduling leads to a large number of missed
deadlines if the output queues for the Canyon movies are large."

The mechanism the sweep exposes: under RR, Canyon paths are scheduled
"as long as their output queues are not full" — so the bigger the output
queue, the longer Canyon's non-urgent read-ahead starves Neptune, and the
more Neptune deadlines die.  EDF derives each wakeup's deadline from the
bottleneck (output) queue, so full Canyon queues mean distant deadlines
and Neptune always wins when it matters.
"""

from __future__ import annotations

import os
from typing import List, NamedTuple, Optional

from ..mpeg.clips import CANYON, NEPTUNE, synthesize_clip
from .testbed import Testbed

#: Paper reference point: queue=128, RR misses ~850/1345; EDF misses 0.
PAPER_RR_MISSES_AT_128 = 850
PAPER_NEPTUNE_DEADLINES = 1345


class EdfRrResult(NamedTuple):
    policy: str
    outq_frames: int
    neptune_presented: int
    neptune_missed: int
    neptune_deadlines: int
    canyon_missed: int

    @property
    def miss_fraction(self) -> float:
        if not self.neptune_deadlines:
            return 0.0
        return self.neptune_missed / self.neptune_deadlines


def run_edf_rr(policy: str, outq_frames: int = 128,
               canyon_count: int = 8, seed: int = 2,
               neptune_frames: Optional[int] = None,
               prebuffer: int = 8) -> EdfRrResult:
    """Run the 8-Canyon + 1-Neptune mix under one scheduling policy."""
    if neptune_frames is None:
        neptune_frames = (NEPTUNE.nframes if os.environ.get("REPRO_FULL")
                          else 600)
    testbed = Testbed(seed=seed)
    neptune_clip = synthesize_clip(NEPTUNE, seed=seed,
                                   nframes=neptune_frames)
    canyon_clip = synthesize_clip(CANYON, seed=seed + 1)
    neptune_source = testbed.add_video_source(neptune_clip, dst_port=6100)
    canyon_sources = [
        testbed.add_video_source(canyon_clip, dst_port=6200 + i)
        for i in range(canyon_count)
    ]
    kernel = testbed.build_scout(rate_limited_display=True)
    neptune = kernel.start_video(NEPTUNE, (str(neptune_source.ip), 7200),
                                 local_port=6100, fps=30.0, policy=policy,
                                 outq_len=outq_frames, inq_len=64,
                                 prebuffer=prebuffer)
    neptune.sink.expected_frames = len(neptune_clip.frames)
    canyons = []
    for i, source in enumerate(canyon_sources):
        session = kernel.start_video(CANYON, (str(source.ip), 7200),
                                     local_port=6200 + i, fps=10.0,
                                     policy=policy, outq_len=outq_frames,
                                     prebuffer=prebuffer)
        session.sink.expected_frames = len(canyon_clip.frames)
        canyons.append(session)
    testbed.start_all()
    # Run for the Neptune playback duration plus settle time.
    testbed.run_seconds(neptune_frames / 30.0 + 4.0)
    return EdfRrResult(
        policy=policy,
        outq_frames=outq_frames,
        neptune_presented=neptune.frames_presented,
        neptune_missed=neptune.missed_deadlines,
        neptune_deadlines=neptune.frames_presented + neptune.missed_deadlines,
        canyon_missed=sum(c.missed_deadlines for c in canyons),
    )


def run_queue_sweep(queue_sizes: Optional[List[int]] = None,
                    seed: int = 2) -> List[EdfRrResult]:
    """The headline comparison plus the queue-size dependence."""
    if queue_sizes is None:
        queue_sizes = [16, 64, 128]
    results = []
    for outq in queue_sizes:
        for policy in ("edf", "rr"):
            results.append(run_edf_rr(policy, outq_frames=outq, seed=seed))
    return results


def format_edf_rr(results: List[EdfRrResult]) -> str:
    lines = [
        "E3 (Sec 4.3): 8x Canyon@10fps + Neptune@30fps, missed Neptune deadlines",
        f"(paper @128-frame queues: EDF misses 0, RR misses ~"
        f"{PAPER_RR_MISSES_AT_128}/{PAPER_NEPTUNE_DEADLINES})",
        f"{'policy':<8}{'outq':>6}{'presented':>11}{'missed':>8}"
        f"{'deadlines':>11}{'miss%':>8}",
    ]
    for r in results:
        lines.append(
            f"{r.policy:<8}{r.outq_frames:>6}{r.neptune_presented:>11}"
            f"{r.neptune_missed:>8}{r.neptune_deadlines:>11}"
            f"{r.miss_fraction * 100:>7.1f}%")
    return "\n".join(lines)
