"""The trace experiment: replay the MPEG workload with tracing on.

The paper argues that making paths explicit makes resource accounting
explicit too — "the path then becomes the entity that is scheduled, and
the object to which resource usage is charged" (Section 4).  This
experiment demonstrates the claim operationally: a video path created
with ``PA_TRACE`` yields a complete per-message account of where virtual
CPU time went (per stage, exclusively attributed) and where virtual wall
time was spent waiting (per queue), with zero instrumentation on any
other path in the same kernel.

``run_trace`` streams a clip through a traced MPEG path and returns a
:class:`TraceReport`; ``format_trace`` renders the hottest stage spans,
the queue-wait profile, and the metrics snapshot.  The collapsed-stack
output (``report.collapsed``) is loadable by standard flamegraph tooling
and is the artifact the golden-trace regression test pins.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..mpeg.clips import ClipProfile, clip_by_name
from ..observe import Observatory
from .testbed import Testbed, frames_budget

#: Port the traced video session listens on (fixed for determinism).
TRACE_PORT = 6000


class TraceReport:
    """Everything ``run_trace`` observed about one traced playback."""

    def __init__(self, clip: str, frames_sent: int, frames_presented: int,
                 spans: int, evicted: int, open_spans: int,
                 hottest: List[Tuple[str, int, float, float]],
                 collapsed: str, digest: str, metrics_text: str,
                 metrics: Dict[str, float]):
        self.clip = clip
        self.frames_sent = frames_sent
        self.frames_presented = frames_presented
        self.spans = spans
        self.evicted = evicted
        self.open_spans = open_spans
        #: ``(label, count, total_cost_us, total_wall_us)`` rows.
        self.hottest = hottest
        self.collapsed = collapsed
        self.digest = digest
        self.metrics_text = metrics_text
        #: Headline scalars pulled out of the registry for assertions.
        self.metrics = metrics

    def __repr__(self) -> str:
        return (f"<TraceReport {self.clip} spans={self.spans} "
                f"digest={self.digest[:12]}>")


def run_trace(clip_name: str = "Neptune", seed: int = 0,
              nframes: Optional[int] = None, top: int = 12,
              capacity: int = 65536) -> TraceReport:
    """Stream *clip_name* through a traced path and account for it."""
    profile: ClipProfile = clip_by_name(clip_name)
    frames = nframes if nframes is not None \
        else frames_budget(profile, default_cap=120)

    testbed = Testbed(seed=seed)
    kernel = testbed.build_scout()
    kernel.observatory = Observatory(testbed.world.engine, capacity=capacity)
    source = testbed.add_video_source(profile, dst_port=TRACE_PORT,
                                      seed=seed, nframes=frames)
    session = kernel.start_video(profile, (source.ip, source.src_port),
                                 local_port=TRACE_PORT, trace=True)
    testbed.start_all()
    testbed.run_until_sources_done()

    observatory = kernel.observatory
    recorder = observatory.recorder
    registry = observatory.metrics
    metrics = {
        "messages_bwd": registry.total("path_messages_total",
                                       direction="BWD"),
        "cycles": registry.total("path_cycles_total"),
        "demux": registry.total("path_demux_total"),
        "drops": registry.total("path_drops_total"),
        "queue_drops": registry.total("queue_drops_total"),
        "traversals": registry.total("stage_traversals_total"),
    }
    return TraceReport(
        clip=profile.name,
        frames_sent=frames,
        frames_presented=session.frames_presented,
        spans=len(recorder),
        evicted=recorder.evicted,
        open_spans=recorder.open_count(),
        hottest=recorder.summary(top),
        collapsed=recorder.collapsed_text(),
        digest=recorder.digest(),
        metrics_text=registry.render(),
        metrics=metrics,
    )


def format_trace(report: TraceReport) -> str:
    """Render the report the way the other experiments print tables."""
    lines = [
        f"Traced playback of {report.clip}: "
        f"{report.frames_presented}/{report.frames_sent} frames presented, "
        f"{report.spans} spans retained "
        f"({report.evicted} evicted, {report.open_spans} still open)",
        "",
        f"{'span group':<28}{'count':>8}{'cost (us)':>14}{'wall (us)':>14}",
        "-" * 64,
    ]
    for label, count, cost_us, wall_us in report.hottest:
        lines.append(f"{label:<28}{count:>8}{cost_us:>14.1f}{wall_us:>14.1f}")
    lines += [
        "",
        f"collapsed-stack digest: {report.digest}",
        "",
        report.metrics_text,
    ]
    return "\n".join(lines)
