"""Multi-hop forwarding experiment: heterogeneous MTUs + PMTUD.

The router appliance scenario (DESIGN.md section 16): a 3-hop chain
whose middle link has a 600-byte MTU between 1500-byte edges.  Two
deterministic measurements:

* **differential delivery** — the same blob through a single-hop
  baseline, through the 3-hop chain with an MTU-oblivious sender
  (routers fragment in flight), and through the 3-hop chain after
  path-MTU discovery (zero fragments anywhere); all three must deliver
  byte-identical payloads;
* **loss amplification** — on a lossy min-MTU link, losing any one
  fragment of a datagram loses the whole datagram, so an
  always-fragmenting sender's goodput decays with the *fragment* count
  while a PMTUD sender's decays only with the *datagram* count.  This
  is the classic "fragmentation considered harmful" effect, and the
  quantitative case for discovery.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from ..sim.world import SimWorld
from ..topo import Topology

MID_MTU = 600
EDGE_MTU = 1500


class MultihopRun(NamedTuple):
    label: str
    hops: int
    pmtu: Optional[int]       # learned path MTU (None: discovery off)
    datagrams: int
    sender_fragments: int     # fragments the sending IP stage created
    inflight_fragments: int   # fragments the first router created
    bytes_delivered: int
    identical: bool


class LossGoodput(NamedTuple):
    loss_rate: float
    frag_datagrams: int
    frag_bytes: int
    pmtud_datagrams: int
    pmtud_bytes: int
    ratio: float              # pmtud_bytes / frag_bytes


def build_three_hop(world: SimWorld, mid_mtu: int = MID_MTU,
                    loss_rate: float = 0.0,
                    bandwidth_mbps: float = 100.0,
                    latency_us: float = 20.0) -> Topology:
    """sender --1500-- r1 --mid_mtu-- r2 --1500-- receiver"""
    topo = Topology(world)
    topo.segment("L1", mtu=EDGE_MTU, bandwidth_mbps=bandwidth_mbps,
                 latency_us=latency_us)
    topo.segment("L2", mtu=mid_mtu, bandwidth_mbps=bandwidth_mbps,
                 latency_us=latency_us, loss_rate=loss_rate)
    topo.segment("L3", mtu=EDGE_MTU, bandwidth_mbps=bandwidth_mbps,
                 latency_us=latency_us)
    topo.host("sender", "L1", "10.0.1.1")
    topo.host("receiver", "L3", "10.0.3.1")
    topo.router("r1", {"a": ("L1", "10.0.1.254"), "b": ("L2", "10.0.2.1")})
    topo.router("r2", {"a": ("L2", "10.0.2.254"), "b": ("L3", "10.0.3.254")})
    return topo


def _blob(size: int) -> bytes:
    return bytes((i * 31 + 7) % 256 for i in range(size))


def _transfer(topo: Topology, blob: bytes, label: str, hops: int,
              pmtud: bool, mss: Optional[int],
              run_us: float = 5_000_000.0) -> MultihopRun:
    world = topo.world
    pp = topo.provision("sender", "receiver", pmtud=pmtud)
    count = pp.send_stream(blob, mss=mss)
    world.run_for(run_us)
    first_router = next(iter(topo.routers.values()), None)
    return MultihopRun(
        label=label, hops=hops,
        pmtu=pp.pmtu if pmtud else None,
        datagrams=count,
        sender_fragments=pp.path.stage_of("IP").fragments_sent,
        inflight_fragments=(first_router.fwd.fragments_created
                            if first_router is not None else 0),
        bytes_delivered=len(pp.received_bytes()),
        identical=pp.received_bytes() == blob)


def run_multihop(blob_size: int = 20_000, seed: int = 11
                 ) -> List[MultihopRun]:
    """The differential: single hop vs in-flight frag vs PMTUD."""
    blob = _blob(blob_size)
    runs = []

    world = SimWorld(seed=seed)
    topo = Topology(world)
    topo.segment("L1", mtu=EDGE_MTU, bandwidth_mbps=100.0, latency_us=20.0)
    topo.host("sender", "L1", "10.0.1.1")
    topo.host("receiver", "L1", "10.0.1.2")
    runs.append(_transfer(topo, blob, "single-hop baseline", 1,
                          pmtud=False, mss=1400))

    topo = build_three_hop(SimWorld(seed=seed))
    runs.append(_transfer(topo, blob, "3-hop, in-flight frag", 3,
                          pmtud=False, mss=1400))

    topo = build_three_hop(SimWorld(seed=seed))
    runs.append(_transfer(topo, blob, "3-hop, PMTUD", 3,
                          pmtud=True, mss=None))
    return runs


def run_loss_amplification(loss_rate: float = 0.25,
                           blob_size: int = 100_000,
                           seed: int = 7) -> LossGoodput:
    """Goodput over a lossy min-MTU link: fragment-loss amplification
    vs PMTUD resegmentation, same blob, same seed, fixed horizon."""
    blob = _blob(blob_size)
    results = {}
    for mode in ("frag", "pmtud"):
        topo = build_three_hop(SimWorld(seed=seed), loss_rate=loss_rate,
                               latency_us=5.0)
        pp = topo.provision("sender", "receiver", pmtud=(mode == "pmtud"))
        count = pp.send_stream(blob, mss=(1400 if mode == "frag" else None))
        topo.world.run_for(3_000_000)
        results[mode] = (count, topo.hosts["receiver"].bytes_received)
    frag_n, frag_bytes = results["frag"]
    pmtud_n, pmtud_bytes = results["pmtud"]
    return LossGoodput(
        loss_rate=loss_rate,
        frag_datagrams=frag_n, frag_bytes=frag_bytes,
        pmtud_datagrams=pmtud_n, pmtud_bytes=pmtud_bytes,
        ratio=pmtud_bytes / max(frag_bytes, 1))


def format_multihop(runs: List[MultihopRun],
                    loss: Optional[LossGoodput] = None) -> str:
    lines = [
        "Multi-hop forwarding (DESIGN.md sec 16): 1500/600/1500 chain",
        f"{'scenario':>24}{'hops':>6}{'pmtu':>6}{'dgrams':>8}"
        f"{'src-frag':>10}{'hop-frag':>10}{'bytes':>8}{'ok':>4}",
    ]
    for r in runs:
        lines.append(
            f"{r.label:>24}{r.hops:>6}"
            f"{r.pmtu if r.pmtu is not None else '-':>6}"
            f"{r.datagrams:>8}{r.sender_fragments:>10}"
            f"{r.inflight_fragments:>10}{r.bytes_delivered:>8}"
            f"{'yes' if r.identical else 'NO':>4}")
    if loss is not None:
        lines.append(
            f"  lossy min-MTU link (p={loss.loss_rate}): "
            f"always-fragmenting {loss.frag_bytes} B vs "
            f"PMTUD {loss.pmtud_bytes} B -> {loss.ratio:.2f}x goodput")
    return "\n".join(lines)
