"""Multipath experiment: path groups and warm pools (beyond the paper).

This experiment exercises the extension DESIGN.md section 12 describes:
one flow class fanned across a :class:`~repro.multipath.PathGroup` of
parallel paths, dispatched at the demux boundary by a load-aware policy,
with replacement/connection paths drawn from a warm
:class:`~repro.multipath.PathPool`.

Two deterministic measurements (no wall-clock timing, so the numbers are
reproducible anywhere):

* **fan-out throughput** — the same offered load (bursts overflowing a
  single path's bounded input queue) against groups of growing size;
  delivered + dropped must equal offered exactly for every
  configuration, and a 4-member ``least_loaded`` group should sustain
  several times the single path's delivered throughput;
* **pool churn** — an acquire/release cycle over a warm pool: every
  cycle after the prewarm must be a hit (zero cold creates).
"""

from __future__ import annotations

from typing import List, NamedTuple, Sequence

from ..core.attributes import PA_NET_PARTICIPANTS, Attrs
from ..core.classify import classify
from ..core.flowcache import FlowCache
from ..core.message import Msg
from ..core.stage import BWD
from ..multipath import PathGroup, PathPool
from ..net.common import PA_LOCAL_PORT
from .micro import Fig7Stack, REMOTE_IP

PORT = 6100


class MultipathPoint(NamedTuple):
    members: int
    policy: str
    offered: int
    delivered: int
    dropped: int
    dispatches: int
    throughput_x: float  # delivered, relative to the single-path run


class PoolChurnResult(NamedTuple):
    cycles: int
    hits: int
    misses: int
    parked: int
    prewarmed: int


def _drive(members: int, policy: str, rounds: int, burst: int
           ) -> MultipathPoint:
    """Offer ``rounds`` bursts at one port served by *members* parallel
    paths, draining each path's input queue once per round."""
    stack = Fig7Stack()
    if members == 1:
        paths = [stack.create_udp_path(local_port=PORT)]
        group = None
    else:
        group = PathGroup(policy, name=f"exp-{members}")
        paths = [group.add(stack.create_udp_path(PORT))
                 for _ in range(members)]
    cache = FlowCache(capacity=128)
    offered = delivered = dropped = 0
    for _ in range(rounds):
        for _ in range(burst):
            msg = Msg(stack.udp_frame(PORT))
            offered += 1
            path = classify(stack.eth, msg, cache=cache)
            assert path is not None
            if not path.input_queue(BWD).try_enqueue(msg):
                path.note_drop(msg, "path input queue full", "inq_overflow")
                dropped += 1
        for path in paths:
            queue = path.input_queue(BWD)
            while queue.try_dequeue() is not None:
                delivered += 1
    assert offered == delivered + dropped  # exact ledger, every config
    return MultipathPoint(
        members=members, policy=policy if members > 1 else "-",
        offered=offered, delivered=delivered, dropped=dropped,
        dispatches=group.dispatches if group is not None else 0,
        throughput_x=0.0)


def run_multipath(member_counts: Sequence[int] = (1, 2, 4),
                  policy: str = "least_loaded", rounds: int = 10,
                  burst: int = 96) -> List[MultipathPoint]:
    points = [_drive(m, policy, rounds, burst) for m in member_counts]
    base = max(points[0].delivered, 1)
    return [p._replace(throughput_x=p.delivered / base) for p in points]


def run_pool_churn(cycles: int = 100) -> PoolChurnResult:
    stack = Fig7Stack()
    attrs = Attrs({PA_NET_PARTICIPANTS: (REMOTE_IP, 7000),
                   PA_LOCAL_PORT: PORT})
    pool = PathPool(stack.test)
    pool.prewarm(attrs, count=1)
    for _ in range(cycles):
        pool.release(pool.acquire(attrs))
    return PoolChurnResult(cycles=cycles, hits=pool.hits,
                           misses=pool.misses, parked=pool.parked,
                           prewarmed=pool.prewarmed)


def format_multipath(points: List[MultipathPoint],
                     churn: PoolChurnResult) -> str:
    lines = [
        "Multipath (beyond the paper; DESIGN.md sec 12): "
        "group fan-out + warm pool",
        f"{'members':>8}{'policy':>14}{'offered':>9}{'delivered':>11}"
        f"{'dropped':>9}{'throughput':>12}",
    ]
    for p in points:
        lines.append(
            f"{p.members:>8}{p.policy:>14}{p.offered:>9}{p.delivered:>11}"
            f"{p.dropped:>9}{p.throughput_x:>11.1f}x")
    lines.append(
        f"  pool churn: {churn.cycles} acquire/release cycles -> "
        f"{churn.hits} hits, {churn.misses} cold creates "
        f"({churn.prewarmed} prewarmed)")
    return "\n".join(lines)
