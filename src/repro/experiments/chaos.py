"""Chaos experiments: paths under injected faults, and their recovery.

Two harnesses drive the robustness machinery end to end:

* :func:`run_tcp_recovery` — a TCP path sends a byte stream over a wire
  misbehaving per a named fault profile (:mod:`repro.faults.plan`); the
  retransmission machinery must deliver every byte in order anyway.  The
  result carries a digest over the delivered bytes *and* the injection /
  recovery counters, so two same-seed runs can be checked byte-identical;
* :func:`run_watchdog_recovery` — a Scout video path's MFLOW stage is
  stall-faulted mid-stream; the path watchdog must notice the flat
  progress signature, tear the path down, rebuild it from its attributes,
  and playback must resume.  The result reports detection and recovery
  latency in virtual time — the headline numbers of
  ``benchmarks/bench_fault_recovery.py``.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, NamedTuple, Optional, Tuple

from .. import params
from ..core.attributes import PA_NET_PARTICIPANTS, Attrs
from ..core.classify import classify
from ..core.graph import RouterGraph
from ..core.message import Msg
from ..core.path_create import path_create
from ..core.stage import BWD, FWD
from ..faults import FaultyLink, PathWatchdog, StageFault, StageFaultInjector
from ..faults.plan import FaultPlan, profile
from ..kernel.hosts import TcpSinkHost
from ..kernel.scout import ScoutKernel
from ..mpeg.clips import NEPTUNE, ClipProfile
from ..net.arp import ArpRouter
from ..net.common import PA_LOCAL_PORT
from ..net.eth import EthRouter
from ..net.ip import IpRouter
from ..net.segment import EtherSegment, NetDevice
from ..net.tcp import TcpRouter
from ..sim.world import SimWorld
from .testbed import Testbed

LOCAL_MAC = "02:00:00:00:00:01"
LOCAL_IP = "10.0.0.1"
SINK_MAC = "02:00:00:00:00:02"
SINK_IP = "10.0.0.2"


def _pattern(n: int) -> bytes:
    """A deterministic, position-dependent payload (corruption-visible)."""
    return bytes((7 + 31 * i) % 256 for i in range(n))


# ---------------------------------------------------------------------------
# TCP byte-stream delivery across a faulty wire
# ---------------------------------------------------------------------------


class TcpRecoveryResult(NamedTuple):
    profile: str
    seed: int
    payload_bytes: int
    delivered_bytes: int
    complete: bool           #: every byte arrived, in order, unmodified
    duration_us: float
    goodput_kbps: float
    retransmissions: int
    retx_abandoned: int
    rtt_samples: int
    sink_dup_segments: int
    sink_ooo_segments: int
    link: Dict[str, int]     #: FaultyLink counters
    digest: str              #: sha256 over delivered bytes + fault trace


class _TcpSenderMachine:
    """A minimal machine with one TCP-over-IP path onto the segment.

    Received frames are classified and delivered inline (at "interrupt
    level"): the stack under test here is the protocol machinery, not the
    scheduler, so no path thread is needed.
    """

    def __init__(self, world: SimWorld, segment: EtherSegment,
                 remote_ip: str, remote_mac: str,
                 local_port: int, remote_port: int):
        self.world = world
        self.device = NetDevice(LOCAL_MAC, world.cpu)
        segment.attach(self.device)
        self.graph = RouterGraph()
        self.eth = self.graph.add(EthRouter("ETH", mac=LOCAL_MAC))
        self.arp = self.graph.add(ArpRouter("ARP"))
        self.ip = self.graph.add(IpRouter("IP", addr=LOCAL_IP))
        self.tcp = self.graph.add(TcpRouter("TCP"))
        self.graph.connect("IP.down", "ETH.up")
        self.graph.connect("IP.res", "ARP.resolver")
        self.graph.connect("ARP.down", "ETH.up")
        self.graph.connect("TCP.down", "IP.up")
        self.eth.attach_device(self.device)
        self.arp.add_entry(remote_ip, remote_mac)
        self.graph.boot()
        self.ip.use_engine(world.engine)
        self.arp.use_engine(world.engine)
        self.tcp.use_engine(world.engine)
        self.path = path_create(self.tcp, Attrs({
            PA_NET_PARTICIPANTS: (remote_ip, remote_port),
            PA_LOCAL_PORT: local_port,
        }))
        self.unclassified = 0
        self.device.rx_handler = self._rx

    def _rx(self, frame: bytes) -> None:
        msg = Msg(frame)
        path = classify(self.eth, msg)
        if path is None:
            self.unclassified += 1
            return
        path.deliver(msg, BWD)


def run_tcp_recovery(profile_name: str = "drop10_reorder", seed: int = 1,
                     payload_bytes: int = 32_000, chunk_bytes: int = 512,
                     send_interval_us: float = 250.0,
                     max_seconds: float = 60.0,
                     plan: Optional[FaultPlan] = None) -> TcpRecoveryResult:
    """Stream *payload_bytes* through a TCP path over a faulty wire."""
    fault_plan = plan if plan is not None else profile(profile_name, seed=seed)
    world = SimWorld(seed=seed)
    engine = world.engine
    segment = EtherSegment(engine, latency_us=50.0, rng=world.rng)
    local_port, remote_port = 8000, 80
    machine = _TcpSenderMachine(world, segment, SINK_IP, SINK_MAC,
                                local_port, remote_port)
    sink = TcpSinkHost(engine, SINK_MAC, SINK_IP, LOCAL_MAC, LOCAL_IP,
                       port=remote_port)
    segment.attach(sink)

    payload = _pattern(payload_bytes)
    chunks = [payload[i:i + chunk_bytes]
              for i in range(0, len(payload), chunk_bytes)]
    for index, chunk in enumerate(chunks):
        engine.schedule(index * send_interval_us,
                        machine.path.deliver, Msg(chunk), FWD)

    link = FaultyLink(segment, fault_plan)
    link.install()
    deadline_us = max_seconds * 1_000_000.0
    slice_us = 1_000.0
    while engine.now < deadline_us and len(sink.received) < payload_bytes:
        engine.run_until(engine.now + slice_us)
    duration_us = engine.now
    link.uninstall()

    stage = machine.path.stage_of("TCP")
    delivered = bytes(sink.received)
    trace = (f"{fault_plan.name}/{fault_plan.seed}:"
             f"{sorted(link.counters().items())}:"
             f"retx={stage.retransmissions}:acks={sink.acks_sent}")
    digest = hashlib.sha256(delivered + trace.encode()).hexdigest()
    duration_s = max(duration_us, 1.0) / 1e6
    return TcpRecoveryResult(
        profile=fault_plan.name,
        seed=seed,
        payload_bytes=payload_bytes,
        delivered_bytes=len(delivered),
        complete=delivered == payload,
        duration_us=duration_us,
        goodput_kbps=len(delivered) * 8 / duration_s / 1e3,
        retransmissions=stage.retransmissions,
        retx_abandoned=stage.retx_abandoned,
        rtt_samples=stage.rtt_samples,
        sink_dup_segments=sink.dup_segments,
        sink_ooo_segments=sink.ooo_segments,
        link=link.counters(),
        digest=digest,
    )


def run_tcp_profiles(profiles: Optional[List[str]] = None, seed: int = 1,
                     **kwargs) -> List[TcpRecoveryResult]:
    """One :func:`run_tcp_recovery` per named profile."""
    names = profiles if profiles is not None else \
        ["none", "drop10", "reorder", "drop10_reorder", "dup5", "lossy"]
    return [run_tcp_recovery(name, seed=seed, **kwargs) for name in names]


def format_tcp_recovery(results: List[TcpRecoveryResult]) -> str:
    lines = [
        "TCP byte-stream delivery across a faulty wire",
        f"{'profile':<16}{'delivered':>12}{'ok':>4}{'retx':>6}"
        f"{'dropped':>8}{'reord':>6}{'time':>9}{'goodput':>10}",
        f"{'':<16}{'[bytes]':>12}{'':>4}{'':>6}"
        f"{'[wire]':>8}{'':>6}{'[ms]':>9}{'[kbps]':>10}",
    ]
    for r in results:
        ok = "yes" if r.complete else "NO"
        lines.append(
            f"{r.profile:<16}{r.delivered_bytes:>12}{ok:>4}"
            f"{r.retransmissions:>6}{r.link['dropped']:>8}"
            f"{r.link['reordered']:>6}{r.duration_us / 1000:>9.1f}"
            f"{r.goodput_kbps:>10.1f}")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Watchdog: stall detection and path rebuild mid-stream
# ---------------------------------------------------------------------------


class WatchdogRecoveryResult(NamedTuple):
    seed: int
    stall_at_us: float
    stall_budget_us: float
    stalls_detected: int
    detection_latency_us: Optional[float]  #: stall onset -> detection
    rebuilds: int
    recovery_latency_us: Optional[float]   #: detection -> first new output
    frames_before_stall: int
    frames_after_rebuild: int
    window_probes: int
    source_done: bool
    events: List[dict]


def run_watchdog_recovery(seed: int = 3, stall_at_us: float = 2_000_000.0,
                          clip: ClipProfile = NEPTUNE, nframes: int = 240,
                          stall_budget_us: Optional[float] = None,
                          check_interval_us: Optional[float] = None,
                          max_seconds: float = 60.0
                          ) -> WatchdogRecoveryResult:
    """Stall a video path's MFLOW stage mid-stream; the watchdog rebuilds.

    The fault mode is the quiet one — the stage swallows packets without
    any drop note — so only the watchdog's heartbeat (demand advancing
    while the progress signature stays flat) can catch it.  Recovery then
    exercises the whole loop: teardown, ``path_create`` from the original
    attributes, the source's window probe reopening the flow.
    """
    testbed = Testbed(seed=seed)
    source = testbed.add_video_source(
        clip, dst_port=6100, seed=seed, nframes=nframes, pace_fps=clip.fps,
        probe_timeout_us=params.MFLOW_PROBE_TIMEOUT_US)
    kernel = testbed.build_scout(rate_limited_display=False)
    remote = (str(source.ip), source.src_port)
    session = kernel.start_video(clip, remote, local_port=6100)

    injector = StageFaultInjector(testbed.world.engine)
    injector.apply(session.path,
                   StageFault(router="MFLOW", mode="stall",
                              start_us=stall_at_us))

    rebuilt_sessions = []

    def rebuild():
        attrs = kernel.build_video_attrs(clip, remote, local_port=6100)
        path = path_create(kernel.display, attrs,
                           transforms=kernel.transforms,
                           admission=kernel.admission)
        rebuilt_sessions.append(kernel._attach_video_path(path))
        return path

    watchdog_kwargs = {}
    if stall_budget_us is not None:
        watchdog_kwargs["stall_budget_us"] = stall_budget_us
    if check_interval_us is not None:
        watchdog_kwargs["check_interval_us"] = check_interval_us
    watchdog = PathWatchdog(testbed.world.engine, session.path, rebuild,
                            **watchdog_kwargs).start()

    testbed.start_all()
    testbed.run_until_sources_done(max_seconds=max_seconds)
    watchdog.stop()

    detection: Optional[float] = None
    for event in watchdog.events:
        if event["type"] == "stall_detected":
            detection = event["time_us"] - stall_at_us
            break
    return WatchdogRecoveryResult(
        seed=seed,
        stall_at_us=stall_at_us,
        stall_budget_us=watchdog.stall_budget_us,
        stalls_detected=watchdog.stalls_detected,
        detection_latency_us=detection,
        rebuilds=watchdog.rebuilds,
        recovery_latency_us=watchdog.last_recovery_latency_us,
        frames_before_stall=session.frames_presented,
        frames_after_rebuild=sum(s.frames_presented
                                 for s in rebuilt_sessions),
        window_probes=source.window_probes,
        source_done=source.done,
        events=list(watchdog.events),
    )


def format_watchdog_recovery(result: WatchdogRecoveryResult) -> str:
    def ms(value: Optional[float]) -> str:
        return "-" if value is None else f"{value / 1000:.1f} ms"

    lines = [
        "Watchdog: MFLOW stage stalled mid-stream, path rebuilt",
        f"  stall injected at          {result.stall_at_us / 1000:.0f} ms "
        f"(budget {result.stall_budget_us / 1000:.0f} ms)",
        f"  stalls detected            {result.stalls_detected}",
        f"  detection latency          {ms(result.detection_latency_us)}",
        f"  rebuilds                   {result.rebuilds}",
        f"  recovery latency           {ms(result.recovery_latency_us)}",
        f"  frames before stall        {result.frames_before_stall}",
        f"  frames after rebuild       {result.frames_after_rebuild}",
        f"  source window probes       {result.window_probes}",
        f"  source finished            "
        f"{'yes' if result.source_done else 'no'}",
    ]
    return "\n".join(lines)
