"""Table 2: frame rate under ICMP flood load.

"The additional load consists of a flood of ICMP ECHO requests (generated
with ping -f).  In the Scout case, the video path is run at the default
round robin priority, whereas the path handling ICMP requests is run at
the next lower priority.  In contrast, Linux handles ICMP and video
packets identically inside the kernel."

The flood is emergent, not scripted: the flooder is a faithful ``ping -f``
(a new request per reply, floor of 100/s), so a kernel that answers
floods quickly gets flooded quickly — which is exactly why the two
kernels diverge.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional

from ..mpeg.clips import NEPTUNE, ClipProfile
from ..sim.world import POLICY_RR
from .testbed import Testbed, frames_budget

#: The paper's Table 2, fps: system -> (unloaded, loaded).
PAPER_TABLE2: Dict[str, tuple] = {
    "Scout": (49.9, 49.8),
    "Linux": (39.2, 22.7),
}


class Table2Row(NamedTuple):
    system: str
    unloaded_fps: float
    loaded_fps: float
    paper_unloaded: float
    paper_loaded: float
    flood_rate_pps: float

    @property
    def delta_pct(self) -> float:
        if not self.unloaded_fps:
            return 0.0
        return (self.loaded_fps - self.unloaded_fps) / self.unloaded_fps * 100

    @property
    def paper_delta_pct(self) -> float:
        return (self.paper_loaded - self.paper_unloaded) / self.paper_unloaded * 100


def measure_under_load(kernel_name: str, loaded: bool,
                       profile: ClipProfile = NEPTUNE,
                       nframes: Optional[int] = None,
                       seed: int = 0):
    """Returns (fps, flood_rate_pps) for one cell of the table."""
    if nframes is None:
        nframes = frames_budget(profile)
    testbed = Testbed(seed=seed)
    source = testbed.add_video_source(profile, dst_port=6100, seed=seed,
                                      nframes=nframes)
    flooder = testbed.add_flooder() if loaded else None
    if kernel_name == "scout":
        kernel = testbed.build_scout(rate_limited_display=False)
        # Paper setup: video at default RR priority 0; the boot-time ICMP
        # path already runs at the next lower priority (1).
        session = kernel.start_video(profile, (str(source.ip), 7200),
                                     local_port=6100, policy=POLICY_RR,
                                     priority=0)
    elif kernel_name == "linux":
        kernel = testbed.build_linux(rate_limited_display=False)
        session = kernel.start_video(profile, (str(source.ip), 7200),
                                     local_port=6100)
    else:
        raise ValueError(f"unknown kernel {kernel_name!r}")
    testbed.start_all()
    testbed.run_until_sources_done()
    elapsed_s = testbed.world.now / 1e6
    rate = flooder.requests_sent / elapsed_s if flooder and elapsed_s else 0.0
    return session.achieved_fps(), rate


def run_table2(nframes: Optional[int] = None, seed: int = 0) -> List[Table2Row]:
    rows = []
    for system, kernel_name in (("Scout", "scout"), ("Linux", "linux")):
        unloaded, _ = measure_under_load(kernel_name, loaded=False,
                                         nframes=nframes, seed=seed)
        loaded, rate = measure_under_load(kernel_name, loaded=True,
                                          nframes=nframes, seed=seed)
        paper_unloaded, paper_loaded = PAPER_TABLE2[system]
        rows.append(Table2Row(system, unloaded, loaded,
                              paper_unloaded, paper_loaded, rate))
    return rows


def format_table2(rows: List[Table2Row]) -> str:
    lines = [
        "Table 2: Neptune frame rate under ping -f load (measured vs paper)",
        f"{'System':<8}{'unloaded':>10}{'loaded':>10}{'delta':>9}"
        f"{'(paper delta)':>15}{'flood pps':>11}",
    ]
    for row in rows:
        lines.append(
            f"{row.system:<8}{row.unloaded_fps:>10.1f}{row.loaded_fps:>10.1f}"
            f"{row.delta_pct:>8.1f}%{row.paper_delta_pct:>14.1f}%"
            f"{row.flood_rate_pps:>11.0f}")
    return "\n".join(lines)
