"""The shared experiment testbed: one machine under test plus load hosts.

Recreates the paper's physical setup — the Scout (or Linux) box and its
load generators on one Ethernet — with a few lines per experiment.  All
addressing is allocated automatically; every experiment is deterministic
given its seed.
"""

from __future__ import annotations

import os
from typing import List, Optional, Union

from .. import params
from ..kernel.baseline import LinuxKernel
from ..kernel.hosts import CommandClientHost, PingFlooderHost, VideoSourceHost
from ..kernel.scout import ScoutKernel
from ..mpeg.clips import ClipProfile, EncodedClip, synthesize_clip
from ..net.segment import EtherSegment
from ..sim.world import SimWorld

LOCAL_MAC = "02:00:00:00:00:01"
LOCAL_IP = "10.0.0.1"


def frames_budget(profile: ClipProfile, default_cap: int = 400) -> int:
    """How many frames to stream in an experiment run.

    Full clips reproduce the paper exactly but take minutes of wall time;
    by default runs are capped and the cap is lifted by setting
    ``REPRO_FULL=1`` in the environment.
    """
    if os.environ.get("REPRO_FULL"):
        return profile.nframes
    return min(profile.nframes, default_cap)


class Testbed:
    """One simulated machine under test plus its network neighbourhood."""

    __test__ = False  # not a pytest test class, despite the name's shape

    def __init__(self, seed: int = 0,
                 bandwidth_mbps: float = params.ETH_BANDWIDTH_MBPS,
                 latency_us: float = params.ETH_LINK_LATENCY_US,
                 jitter_us: float = 0.0,
                 loss_rate: float = 0.0):
        self.world = SimWorld(seed=seed)
        self.segment = EtherSegment(self.world.engine,
                                    bandwidth_mbps=bandwidth_mbps,
                                    latency_us=latency_us,
                                    jitter_us=jitter_us,
                                    loss_rate=loss_rate,
                                    rng=self.world.rng)
        self.kernel: Optional[Union[ScoutKernel, LinuxKernel]] = None
        self.sources: List[VideoSourceHost] = []
        self.flooders: List[PingFlooderHost] = []
        self._next_host = 2

    # -- addressing ------------------------------------------------------------

    def _alloc_addr(self):
        index = self._next_host
        self._next_host += 1
        return f"02:00:00:00:00:{index:02x}", f"10.0.0.{index}"

    # -- kernels ----------------------------------------------------------------

    def build_scout(self, **kwargs) -> ScoutKernel:
        self.kernel = ScoutKernel(self.world, self.segment,
                                  local_mac=LOCAL_MAC, local_ip=LOCAL_IP,
                                  **kwargs)
        return self.kernel

    def build_linux(self, **kwargs) -> LinuxKernel:
        self.kernel = LinuxKernel(self.world, self.segment,
                                  local_mac=LOCAL_MAC, local_ip=LOCAL_IP,
                                  **kwargs)
        return self.kernel

    def _refresh_arp(self) -> None:
        if isinstance(self.kernel, ScoutKernel):
            self.kernel.arp.learn_from_segment(self.segment)

    # -- hosts -------------------------------------------------------------------

    def add_video_source(self, clip: Union[ClipProfile, EncodedClip],
                         dst_port: int, seed: int = 0,
                         nframes: Optional[int] = None,
                         **kwargs) -> VideoSourceHost:
        if isinstance(clip, ClipProfile):
            clip = synthesize_clip(clip, seed=seed, nframes=nframes)
        mac, ip = self._alloc_addr()
        source = VideoSourceHost(self.world.engine, mac, ip, clip,
                                 LOCAL_MAC, LOCAL_IP, dst_port=dst_port,
                                 **kwargs)
        self.segment.attach(source)
        self.sources.append(source)
        self._refresh_arp()
        return source

    def add_flooder(self, **kwargs) -> PingFlooderHost:
        mac, ip = self._alloc_addr()
        flooder = PingFlooderHost(self.world.engine, mac, ip,
                                  LOCAL_MAC, LOCAL_IP, **kwargs)
        self.segment.attach(flooder)
        self.flooders.append(flooder)
        self._refresh_arp()
        return flooder

    def add_command_client(self, dst_port: int = 5000,
                           **kwargs) -> CommandClientHost:
        mac, ip = self._alloc_addr()
        client = CommandClientHost(self.world.engine, mac, ip,
                                   LOCAL_MAC, LOCAL_IP, dst_port=dst_port,
                                   **kwargs)
        self.segment.attach(client)
        self._refresh_arp()
        return client

    # -- running ---------------------------------------------------------------------

    def start_all(self) -> None:
        for source in self.sources:
            source.start()
        for flooder in self.flooders:
            flooder.start()

    def run_seconds(self, seconds: float) -> None:
        self.world.run_for(seconds * 1_000_000.0)

    def run_until_sources_done(self, slack_seconds: float = 2.0,
                               max_seconds: float = 600.0) -> None:
        """Advance until every video source has finished, plus slack."""
        step = 0.5
        elapsed = 0.0
        while elapsed < max_seconds:
            if all(source.done for source in self.sources):
                break
            self.run_seconds(step)
            elapsed += step
        self.run_seconds(slack_seconds)
