"""Experiment harnesses: one module per paper table / in-text experiment.

See DESIGN.md section 4 for the experiment index.  Every harness is
invoked both from ``benchmarks/`` (which print the regenerated tables)
and importable for programmatic use.
"""

from .ablation import (
    AlfResult,
    SegregationPoint,
    format_alf,
    format_segregation,
    measure_alf,
    measure_segregation,
    run_alf_ablation,
    run_segregation_sweep,
)
from .adversary_exp import (
    AdversaryRunResult,
    format_adversary,
    run_adversary,
    run_adversary_matrix,
)
from .admission_exp import (
    AdmissionDecision,
    ClipSample,
    admission_scenario,
    fit_model,
    format_admission,
    measure_clip_cost,
)
from .chaos import (
    TcpRecoveryResult,
    WatchdogRecoveryResult,
    format_tcp_recovery,
    format_watchdog_recovery,
    run_tcp_profiles,
    run_tcp_recovery,
    run_watchdog_recovery,
)
from .early_discard import (
    EarlyDiscardResult,
    format_early_discard,
    run_early_discard,
)
from .edf_rr import EdfRrResult, format_edf_rr, run_edf_rr, run_queue_sweep
from .micro import Fig7Stack, MicroReport, format_micro, measure_structure
from .multihop_exp import (
    LossGoodput,
    MultihopRun,
    build_three_hop,
    format_multihop,
    run_loss_amplification,
    run_multihop,
)
from .multipath_exp import (
    MultipathPoint,
    PoolChurnResult,
    format_multipath,
    run_multipath,
    run_pool_churn,
)
from .queue_sizing import (
    QueueSizingPoint,
    format_queue_sizing,
    measure_point,
    run_queue_sizing,
)
from .shard_exp import ShardRun, format_shard, run_shard
from .wallclock_exp import (
    LoopbackRun,
    WallclockRun,
    format_wallclock,
    run_loopback,
    run_wallclock,
)
from .table1 import PAPER_TABLE1, Table1Row, format_table1, measure_max_rate, run_table1
from .trace_exp import TraceReport, format_trace, run_trace
from .table2 import PAPER_TABLE2, Table2Row, format_table2, measure_under_load, run_table2
from .testbed import Testbed, frames_budget

__all__ = [
    "Testbed", "frames_budget",
    "run_table1", "format_table1", "measure_max_rate", "Table1Row",
    "PAPER_TABLE1",
    "run_table2", "format_table2", "measure_under_load", "Table2Row",
    "PAPER_TABLE2",
    "run_edf_rr", "run_queue_sweep", "format_edf_rr", "EdfRrResult",
    "Fig7Stack", "measure_structure", "format_micro", "MicroReport",
    "run_queue_sizing", "measure_point", "format_queue_sizing",
    "QueueSizingPoint",
    "fit_model", "measure_clip_cost", "admission_scenario",
    "format_admission", "ClipSample", "AdmissionDecision",
    "run_early_discard", "format_early_discard", "EarlyDiscardResult",
    "run_segregation_sweep", "measure_segregation", "format_segregation",
    "SegregationPoint",
    "run_alf_ablation", "measure_alf", "format_alf", "AlfResult",
    "run_tcp_recovery", "run_tcp_profiles", "format_tcp_recovery",
    "TcpRecoveryResult",
    "run_watchdog_recovery", "format_watchdog_recovery",
    "WatchdogRecoveryResult",
    "run_trace", "format_trace", "TraceReport",
    "run_multipath", "run_pool_churn", "format_multipath",
    "MultipathPoint", "PoolChurnResult",
    "run_multihop", "run_loss_amplification", "format_multihop",
    "run_shard", "format_shard", "ShardRun",
    "run_wallclock", "run_loopback", "format_wallclock",
    "WallclockRun", "LoopbackRun",
    "build_three_hop", "MultihopRun", "LossGoodput",
    "run_adversary", "run_adversary_matrix", "format_adversary",
    "AdversaryRunResult",
]
