"""The stable public facade: ``import repro.api`` and stop there.

Everything an application, example, or experiment script needs lives in
this module's ``__all__``: the :class:`Scout` kernel entry, the fluent
:class:`PathBuilder` (replacing hand-built attribute dicts), the
result-returning :func:`classify`, path creation, multipath groups and
pools, the experiment testbed, and the names the bundled examples use.
The deep modules (``repro.core``, ``repro.net``, ...) remain importable —
they are the implementation surface and may reorganize between releases;
this facade is the surface that holds still.

Legacy access: attribute lookups that miss ``__all__`` fall through to
the underlying layers with a :class:`DeprecationWarning` (see
:func:`__getattr__`), so older scripts keep running while the warning
points them at the supported name.
"""

from __future__ import annotations

import warnings
from typing import Any, Mapping, Optional

from . import params
from .admission import (
    BackpressureShedder,
    CpuAdmission,
    FrameCostModel,
    MemoryAdmission,
)
from .core import (
    BWD,
    BWD_IN,
    BWD_OUT,
    FWD,
    FWD_IN,
    FWD_OUT,
    PA_BATCH,
    PA_FRAME_RATE,
    PA_INQ_LEN,
    PA_MEM_BUDGET,
    PA_NET_PARTICIPANTS,
    PA_OUTQ_LEN,
    PA_PATHNAME,
    PA_SCHED_POLICY,
    PA_SCHED_PRIORITY,
    PA_SPECIALIZE,
    PA_TRACE,
    SOURCE_CACHE,
    SOURCE_DEMUX,
    SOURCE_GROUP,
    AdmissionError,
    Attrs,
    ClassificationError,
    ClassifierStats,
    ClassifyResult,
    FlowCache,
    flow_key,
    flow_key_frame,
    Msg,
    MsgBatch,
    Path,
    PathQueue,
    RouterGraph,
    ScoutError,
    build_graph,
    classify_batch,
    classify_ex,
    classify_or_raise,
    path_create,
    path_delete,
)
from .core.attributes import as_attrs
from .core.path_create import AdmissionHook
from .display import DisplayRouter
from .experiments import Testbed, frames_budget, run_edf_rr
from .faults import (
    AdversaryInjector,
    AdversarySpec,
    ArrivalEnvelope,
    DegradationGovernor,
    DropLedger,
    FaultyLink,
    PathWatchdog,
    StabilityVerdict,
    StageFault,
    StageFaultInjector,
    VerdictEngine,
    profile,
)
from .fs import ScsiRouter, UfsRouter, VfsRouter
from .http import HttpRouter
from .kernel import LinuxKernel, RouterKernel, ScoutKernel
from .mpeg import CANYON, FLOWER, NEPTUNE, PAPER_CLIPS, synthesize_clip
from .multipath import PathGroup, PathPool
from .shard import FabricBooks, ShardBooks, ShardedKernel
from .net import (
    IPPROTO_TCP,
    IPPROTO_UDP,
    PA_LOCAL_PORT,
    ArpRouter,
    EthAddr,
    EthRouter,
    EtherSegment,
    ForwardRouter,
    IpAddr,
    IpHeader,
    IpRouter,
    Route,
    RouteTable,
    TcpHeader,
    TcpRouter,
    UdpHeader,
    UdpRouter,
    build_udp_frame,
    parse_frame,
)
from .topo import HostNode, Inventory, ProvisionedPath, Topology
from .observe import Observatory, StarvationDetector
from .sim import SimWorld
from .sim.world import POLICY_EDF, POLICY_RR

#: Result-returning classification is the facade's canonical spelling:
#: ``classify(...)`` here yields a :class:`ClassifyResult` whose ``path``
#: may be ``None`` and whose ``source`` says who decided (demux chain,
#: flow-cache probe, group re-dispatch).  The historical path-returning
#: form survives as :func:`repro.core.classify.classify` and, raising,
#: as :func:`classify_or_raise`.
classify = classify_ex


class PathBuilder:
    """Fluent path construction: invariants in, established path out.

    Replaces hand-built :class:`Attrs` dicts::

        path = (PathBuilder(graph.router("TEST"))
                .invariant(PA_NET_PARTICIPANTS, ("10.0.0.2", 7000))
                .invariant(PA_LOCAL_PORT, 6100)
                .trace(observatory)
                .build())

    Each call returns the builder, so chains read as the attribute set
    they produce; :meth:`build` runs the ordinary four-phase
    :func:`path_create` with whatever transforms/admission hooks were
    attached.  A builder is single-shot per :meth:`build` call but may be
    reused — later builds see the same accumulated invariants.
    """

    def __init__(self, router: Any, transforms: Any = None,
                 admission: Optional[AdmissionHook] = None):
        self._router = router
        self._attrs = Attrs()
        self._transforms = transforms
        self._admission = admission

    def invariant(self, name: str, value: Any = True) -> "PathBuilder":
        """Add one invariant attribute (``PA_*`` name -> value)."""
        self._attrs[name] = value
        return self

    def invariants(self, mapping: Optional[Mapping[str, Any]] = None,
                   **named: Any) -> "PathBuilder":
        """Add several invariants at once (a mapping and/or keywords)."""
        if mapping is not None:
            for name, value in as_attrs(mapping).items():
                self._attrs[name] = value
        for name, value in named.items():
            self._attrs[name] = value
        return self

    def participants(self, host: Any, port: int) -> "PathBuilder":
        """Shorthand for the ``PA_NET_PARTICIPANTS`` invariant."""
        return self.invariant(PA_NET_PARTICIPANTS, (str(host), int(port)))

    def local_port(self, port: int) -> "PathBuilder":
        return self.invariant(PA_LOCAL_PORT, int(port))

    def trace(self, observatory: Any = True) -> "PathBuilder":
        """Arm per-path observability (``PA_TRACE``); pass the
        :class:`Observatory` to use, or ``True`` to let the kernel
        substitute its own."""
        return self.invariant(PA_TRACE, observatory)

    def batch(self, limit: int) -> "PathBuilder":
        """Let the path's thread drain up to *limit* messages per
        scheduler dispatch (``PA_BATCH``, DESIGN.md §13)."""
        return self.invariant(PA_BATCH, int(limit))

    def specialize(self, enabled: bool = True) -> "PathBuilder":
        """Opt this path in (or, with ``False``, explicitly out) of the
        specialized execution tier: the compile phase may ``exec``-
        generate one fused function per chain direction (``PA_SPECIALIZE``,
        DESIGN.md §15).  Unset, the ``REPRO_SPECIALIZE`` environment
        default decides."""
        return self.invariant(PA_SPECIALIZE, bool(enabled))

    def admission(self, hook: Optional[AdmissionHook]) -> "PathBuilder":
        """Gate :meth:`build` through an admission hook (or ``None``)."""
        self._admission = hook
        return self

    def transforms(self, registry: Any) -> "PathBuilder":
        """Apply *registry*'s transformation rules at build time."""
        self._transforms = registry
        return self

    def attrs(self) -> Attrs:
        """The invariant set accumulated so far (live, not a copy)."""
        return self._attrs

    def build(self) -> Path:
        """Run four-phase path creation and return the established path."""
        return path_create(self._router, self._attrs,
                           transforms=self._transforms,
                           admission=self._admission)

    def __repr__(self) -> str:
        return (f"<PathBuilder {getattr(self._router, 'name', self._router)!r} "
                f"attrs={len(self._attrs)}>")


class Scout:
    """One booted Scout machine on its own virtual-time world.

    The three-line entry point the facade promises::

        scout = Scout(seed=7)
        session = scout.kernel.start_video(NEPTUNE, ("10.0.0.2", 7000))
        scout.run(5.0)

    Wraps a :class:`~repro.sim.SimWorld`, an
    :class:`~repro.net.EtherSegment` and a
    :class:`~repro.kernel.ScoutKernel`; keyword arguments flow through to
    the kernel (admission hooks, flow-cache capacity, display mode, ...).
    For multi-host scenarios — remote video sources, ping flooders,
    command clients — use :class:`Testbed`, which manages addressing for
    a whole neighbourhood of hosts.
    """

    def __init__(self, seed: int = 0,
                 bandwidth_mbps: float = params.ETH_BANDWIDTH_MBPS,
                 latency_us: float = params.ETH_LINK_LATENCY_US,
                 shards: Optional[int] = None,
                 **kernel_kwargs: Any):
        if shards is not None and shards > 1:
            # Sharded machine: N kernels behind one flow-hash RX
            # boundary (DESIGN.md §17).  Keyword arguments flow to
            # :class:`~repro.shard.ShardedKernel` (mode=, ports=,
            # batch=, ...); drive it with :meth:`offer` and close with
            # :meth:`merged_books`.
            self.fabric: Optional[Any] = ShardedKernel(
                shards=shards, seed=seed, **kernel_kwargs)
            self.world = None
            self.segment = None
            self.kernel = None
            return
        self.fabric = None
        self.world = SimWorld(seed=seed)
        self.segment = EtherSegment(self.world.engine,
                                    bandwidth_mbps=bandwidth_mbps,
                                    latency_us=latency_us,
                                    rng=self.world.rng)
        self.kernel = ScoutKernel(self.world, self.segment, **kernel_kwargs)

    @property
    def now(self) -> float:
        """Current virtual time in microseconds."""
        self._require_single_kernel("now")
        return self.world.now

    def run(self, seconds: float) -> None:
        """Advance virtual time by *seconds*."""
        self._require_single_kernel("run")
        self.world.run_for(seconds * 1_000_000.0)

    def _require_single_kernel(self, what: str) -> None:
        if self.fabric is not None:
            raise RuntimeError(
                f"Scout(shards=N) is a fabric: {what} belongs to the "
                f"single-kernel form; use offer()/merged_books() or the "
                f"fabric attribute")

    # -- sharded form ----------------------------------------------------------

    def offer(self, frames, metas=None):
        """Feed one frame run through the shard fabric's RX boundary."""
        if self.fabric is None:
            raise RuntimeError("offer() needs Scout(shards=N)")
        return self.fabric.offer(frames, metas)

    def merged_books(self):
        """Stop the fabric's workers and return the reconciled
        :class:`~repro.shard.FabricBooks`."""
        if self.fabric is None:
            raise RuntimeError("merged_books() needs Scout(shards=N)")
        return self.fabric.finish()

    def path(self, router: Any) -> PathBuilder:
        """A :class:`PathBuilder` rooted at *router*, pre-wired with the
        kernel's transformation rules and admission hook."""
        self._require_single_kernel("path")
        return PathBuilder(router, transforms=self.kernel.transforms,
                           admission=self.kernel.admission)

    def stats(self) -> dict:
        self._require_single_kernel("stats")
        return self.kernel.stats()

    def __repr__(self) -> str:
        if self.fabric is not None:
            return f"<Scout fabric {self.fabric!r}>"
        return f"<Scout {self.kernel.ip.addr} t={self.world.now:.0f}us>"


__all__ = [
    # entry points
    "Scout", "PathBuilder", "Testbed", "ScoutKernel", "LinuxKernel",
    "SimWorld", "EtherSegment", "Observatory",
    # multi-hop forwarding & the discovery control plane
    "Topology", "ProvisionedPath", "HostNode", "Inventory",
    "RouterKernel", "ForwardRouter", "Route", "RouteTable",
    # path architecture
    "path_create", "path_delete", "build_graph", "RouterGraph",
    "Attrs", "Msg", "MsgBatch", "Path", "PathQueue", "FlowCache",
    "FWD", "BWD", "FWD_IN", "FWD_OUT", "BWD_IN", "BWD_OUT",
    # classification
    "classify", "classify_ex", "classify_batch", "classify_or_raise",
    "ClassifyResult", "ClassifierStats",
    "SOURCE_DEMUX", "SOURCE_CACHE", "SOURCE_GROUP",
    # multipath
    "PathGroup", "PathPool",
    # shard fabric
    "ShardedKernel", "FabricBooks", "ShardBooks", "flow_key",
    "flow_key_frame",
    # attributes
    "PA_NET_PARTICIPANTS", "PA_LOCAL_PORT", "PA_PATHNAME", "PA_FRAME_RATE",
    "PA_SCHED_POLICY", "PA_SCHED_PRIORITY", "PA_INQ_LEN", "PA_OUTQ_LEN",
    "PA_MEM_BUDGET", "PA_TRACE", "PA_BATCH", "PA_SPECIALIZE",
    # scheduling policies
    "POLICY_RR", "POLICY_EDF",
    # admission
    "CpuAdmission", "MemoryAdmission", "FrameCostModel",
    "BackpressureShedder",
    # routers & net helpers the examples build graphs from
    "EthRouter", "ArpRouter", "IpRouter", "UdpRouter", "TcpRouter",
    "HttpRouter", "VfsRouter", "UfsRouter", "ScsiRouter", "DisplayRouter",
    "EthAddr", "IpAddr", "IpHeader", "UdpHeader", "TcpHeader",
    "IPPROTO_UDP", "IPPROTO_TCP", "build_udp_frame", "parse_frame",
    # clips & experiments
    "NEPTUNE", "CANYON", "FLOWER", "PAPER_CLIPS", "synthesize_clip",
    "run_edf_rr", "frames_budget",
    # faults / self-healing
    "PathWatchdog", "DegradationGovernor", "FaultyLink",
    "StageFault", "StageFaultInjector", "profile",
    # adversarial traffic & stability verdicts
    "AdversarySpec", "AdversaryInjector", "ArrivalEnvelope",
    "DropLedger", "StabilityVerdict", "VerdictEngine",
    "StarvationDetector",
    # errors
    "ScoutError", "AdmissionError", "ClassificationError",
    # tunables
    "params",
]


def __getattr__(name: str) -> Any:
    """Deprecation shim: resolve legacy names from the deep layers.

    Anything public that the facade does not re-export — older scripts
    reached through ``repro.api`` for names like ``MflowRouter`` during
    the facade's introduction — still resolves, with a
    :class:`DeprecationWarning` naming the supported import.
    """
    if name.startswith("_"):
        # Never shim private/dunder probes (the import machinery asks for
        # ``__path__``; copy/pickle ask for ``__reduce__`` and friends).
        raise AttributeError(f"module 'repro.api' has no attribute {name!r}")

    from . import core, display, fs, http, kernel, mpeg, multipath, net, sim

    for layer in (core, net, sim, kernel, mpeg, display, multipath, fs, http):
        value = getattr(layer, name, None)
        if value is not None:
            warnings.warn(
                f"repro.api.{name} is deprecated: import it from "
                f"{layer.__name__} (or use a name in repro.api.__all__)",
                DeprecationWarning, stacklevel=2)
            return value
    raise AttributeError(f"module 'repro.api' has no attribute {name!r}")
