"""The stable public facade: ``import repro.api`` and stop there.

Everything an application, example, or experiment script needs lives in
this module's ``__all__``: the :class:`Scout` kernel entry, the fluent
:class:`PathBuilder` (replacing hand-built attribute dicts), the
result-returning :func:`classify`, path creation, multipath groups and
pools, the experiment testbed, and the names the bundled examples use.
The deep modules (``repro.core``, ``repro.net``, ...) remain importable —
they are the implementation surface and may reorganize between releases;
this facade is the surface that holds still.

Legacy access: attribute lookups that miss ``__all__`` fall through to
the underlying layers with a :class:`DeprecationWarning` (see
:func:`__getattr__`), so older scripts keep running while the warning
points them at the supported name.
"""

from __future__ import annotations

import asyncio
import warnings
from typing import Any, Mapping, Optional, Tuple

from . import params
from .admission import (
    BackpressureShedder,
    CpuAdmission,
    FrameCostModel,
    MemoryAdmission,
)
from .core import (
    BWD,
    BWD_IN,
    BWD_OUT,
    FWD,
    FWD_IN,
    FWD_OUT,
    PA_BATCH,
    PA_FRAME_RATE,
    PA_INQ_LEN,
    PA_MEM_BUDGET,
    PA_NET_PARTICIPANTS,
    PA_OUTQ_LEN,
    PA_PATHNAME,
    PA_SCHED_POLICY,
    PA_SCHED_PRIORITY,
    PA_SPECIALIZE,
    PA_TRACE,
    SOURCE_CACHE,
    SOURCE_DEMUX,
    SOURCE_GROUP,
    AdmissionError,
    Attrs,
    ClassificationError,
    ClassifierStats,
    ClassifyResult,
    FlowCache,
    flow_key,
    flow_key_frame,
    Msg,
    MsgBatch,
    Path,
    PathQueue,
    RouterGraph,
    ScoutError,
    build_graph,
    classify_batch,
    classify_ex,
    classify_or_raise,
    path_create,
    path_delete,
)
from .core.attributes import as_attrs
from .core.path_create import AdmissionHook
from .display import DisplayRouter
from .experiments import Testbed, frames_budget, run_edf_rr
from .faults import (
    AdversaryInjector,
    AdversarySpec,
    ArrivalEnvelope,
    DegradationGovernor,
    DropLedger,
    FaultyLink,
    PathWatchdog,
    StabilityVerdict,
    StageFault,
    StageFaultInjector,
    VerdictEngine,
    profile,
)
from .fs import ScsiRouter, UfsRouter, VfsRouter
from .http import HttpRouter
from .kernel import LinuxKernel, RouterKernel, ScoutKernel
from .mpeg import CANYON, FLOWER, NEPTUNE, PAPER_CLIPS, synthesize_clip
from .multipath import PathGroup, PathPool
from .shard import FabricBooks, ShardBooks, ShardedKernel
from .net import (
    IPPROTO_TCP,
    IPPROTO_UDP,
    PA_LOCAL_PORT,
    ArpRouter,
    EthAddr,
    EthRouter,
    EtherSegment,
    ForwardRouter,
    IpAddr,
    IpHeader,
    IpRouter,
    Route,
    RouteTable,
    TcpHeader,
    TcpRouter,
    UdpHeader,
    UdpRouter,
    build_udp_frame,
    parse_frame,
)
from .topo import HostNode, Inventory, ProvisionedPath, Topology
from .net.sockdev import SocketNetDevice
from .observe import Observatory, StarvationDetector
from .observe.wallclock import WallClockBridge
from .sim import SimWorld
from .sim.aio import AioExecutor, AioWorld
from .sim.world import POLICY_EDF, POLICY_RR

#: Result-returning classification is the facade's canonical spelling:
#: ``classify(...)`` here yields a :class:`ClassifyResult` whose ``path``
#: may be ``None`` and whose ``source`` says who decided (demux chain,
#: flow-cache probe, group re-dispatch).  The historical path-returning
#: form survives as :func:`repro.core.classify.classify` and, raising,
#: as :func:`classify_or_raise`.
classify = classify_ex


class PathBuilder:
    """Fluent path construction: invariants in, established path out.

    Replaces hand-built :class:`Attrs` dicts::

        path = (PathBuilder(graph.router("TEST"))
                .invariant(PA_NET_PARTICIPANTS, ("10.0.0.2", 7000))
                .invariant(PA_LOCAL_PORT, 6100)
                .trace(observatory)
                .build())

    Each call returns the builder, so chains read as the attribute set
    they produce; :meth:`build` runs the ordinary four-phase
    :func:`path_create` with whatever transforms/admission hooks were
    attached.  A builder is single-shot per :meth:`build` call but may be
    reused — later builds see the same accumulated invariants.
    """

    def __init__(self, router: Any, transforms: Any = None,
                 admission: Optional[AdmissionHook] = None):
        self._router = router
        self._attrs = Attrs()
        self._transforms = transforms
        self._admission = admission

    def invariant(self, name: str, value: Any = True) -> "PathBuilder":
        """Add one invariant attribute (``PA_*`` name -> value)."""
        self._attrs[name] = value
        return self

    def invariants(self, mapping: Optional[Mapping[str, Any]] = None,
                   **named: Any) -> "PathBuilder":
        """Add several invariants at once (a mapping and/or keywords)."""
        if mapping is not None:
            for name, value in as_attrs(mapping).items():
                self._attrs[name] = value
        for name, value in named.items():
            self._attrs[name] = value
        return self

    def participants(self, host: Any, port: int) -> "PathBuilder":
        """Shorthand for the ``PA_NET_PARTICIPANTS`` invariant."""
        return self.invariant(PA_NET_PARTICIPANTS, (str(host), int(port)))

    def local_port(self, port: int) -> "PathBuilder":
        return self.invariant(PA_LOCAL_PORT, int(port))

    def trace(self, observatory: Any = True) -> "PathBuilder":
        """Arm per-path observability (``PA_TRACE``); pass the
        :class:`Observatory` to use, or ``True`` to let the kernel
        substitute its own."""
        return self.invariant(PA_TRACE, observatory)

    def batch(self, limit: int) -> "PathBuilder":
        """Let the path's thread drain up to *limit* messages per
        scheduler dispatch (``PA_BATCH``, DESIGN.md §13)."""
        return self.invariant(PA_BATCH, int(limit))

    def specialize(self, enabled: bool = True) -> "PathBuilder":
        """Opt this path in (or, with ``False``, explicitly out) of the
        specialized execution tier: the compile phase may ``exec``-
        generate one fused function per chain direction (``PA_SPECIALIZE``,
        DESIGN.md §15).  Unset, the ``REPRO_SPECIALIZE`` environment
        default decides."""
        return self.invariant(PA_SPECIALIZE, bool(enabled))

    def admission(self, hook: Optional[AdmissionHook]) -> "PathBuilder":
        """Gate :meth:`build` through an admission hook (or ``None``)."""
        self._admission = hook
        return self

    def transforms(self, registry: Any) -> "PathBuilder":
        """Apply *registry*'s transformation rules at build time."""
        self._transforms = registry
        return self

    def attrs(self) -> Attrs:
        """The invariant set accumulated so far (live, not a copy)."""
        return self._attrs

    def build(self) -> Path:
        """Run four-phase path creation and return the established path."""
        return path_create(self._router, self._attrs,
                           transforms=self._transforms,
                           admission=self._admission)

    def __repr__(self) -> str:
        return (f"<PathBuilder {getattr(self._router, 'name', self._router)!r} "
                f"attrs={len(self._attrs)}>")


#: Backend / executor choices the facade resolves (DESIGN.md §18).
BACKENDS = ("sim", "socket")
EXECUTORS = ("sim", "asyncio")

#: Resolved construction modes.
_MODE_FABRIC = "fabric"
_MODE_SIM = "sim"
_MODE_AIO = "aio"
_MODE_SOCKET = "socket"


def _resolve_backend(backend: str, executor: str,
                     shards: Optional[int]) -> str:
    """The one decision point for every Scout construction shape.

    Validates the ``backend`` × ``executor`` × ``shards`` combination
    and returns the construction mode; every rejection is a
    :class:`ScoutError` that names the offending knob and the supported
    values, replacing the ad-hoc ``RuntimeError`` guards this facade
    used to scatter.
    """
    if backend not in BACKENDS:
        raise ScoutError(
            f"unknown backend {backend!r}: choose 'sim' (simulated "
            f"device, the tier-1 default) or 'socket' (real UDP "
            f"loopback sockets)")
    if executor not in EXECUTORS:
        raise ScoutError(
            f"unknown executor {executor!r}: choose 'sim' "
            f"(deterministic virtual-time scheduler, the tier-1 "
            f"default) or 'asyncio' (wall-clock task executor)")
    if shards is not None and shards < 1:
        raise ScoutError(f"shards must be >= 1, got {shards}")
    if shards is not None and shards > 1:
        if backend != "sim" or executor != "sim":
            raise ScoutError(
                f"Scout(shards={shards}) is the deterministic fabric: "
                f"it requires backend='sim' and executor='sim' (got "
                f"backend={backend!r}, executor={executor!r}); run one "
                f"wall-clock kernel per process instead")
        return _MODE_FABRIC
    if backend == "socket":
        if executor != "asyncio":
            raise ScoutError(
                "backend='socket' requires executor='asyncio': real "
                "arrivals cannot be replayed by the deterministic "
                "virtual-time scheduler; pass executor='asyncio' (and "
                "drive it with 'async with Scout(...) as s: await "
                "s.serve()')")
        return _MODE_SOCKET
    if executor == "asyncio":
        return _MODE_AIO
    return _MODE_SIM


class Scout:
    """One booted Scout machine, on virtual or wall-clock time.

    The three-line entry point the facade promises::

        with Scout(seed=7) as scout:
            scout.kernel.start_video(NEPTUNE, ("10.0.0.2", 7000))
            scout.run(5.0)

    By default this wraps a :class:`~repro.sim.SimWorld`, an
    :class:`~repro.net.EtherSegment` and a
    :class:`~repro.kernel.ScoutKernel` — the deterministic tier-1
    configuration.  Two orthogonal knobs select the wall-clock edge
    (DESIGN.md §18):

    ``executor='asyncio'``
        The same kernel and thread bodies, driven by
        :class:`~repro.sim.aio.AioExecutor` as asyncio tasks; queue
        blocking awaits real arrivals, cycle accounting still fills the
        virtual books (read them against real time via
        :meth:`wallclock`).

    ``backend='socket'``
        Frames arrive from a real UDP socket
        (:class:`~repro.net.sockdev.SocketNetDevice`) instead of the
        simulated segment; requires ``executor='asyncio'``::

            async with Scout(backend="socket", executor="asyncio") as s:
                s.kernel.start_udp_sink(6100, ("10.0.0.2", 7000))
                s.add_peer("10.0.0.2", "02:00:00:00:00:02", sender_addr)
                await s.serve(seconds=1.0)

    ``shards=N`` (N > 1) selects the deterministic fabric of
    DESIGN.md §17; it composes with neither wall-clock knob.  All
    combinations resolve through :func:`_resolve_backend`, which rejects
    unsupported shapes with a :class:`ScoutError` naming the fix.
    Keyword arguments flow through to the kernel (admission hooks,
    flow-cache capacity, display mode, ...).  For multi-host simulated
    scenarios use :class:`Testbed`.
    """

    def __init__(self, seed: int = 0,
                 bandwidth_mbps: float = params.ETH_BANDWIDTH_MBPS,
                 latency_us: float = params.ETH_LINK_LATENCY_US,
                 shards: Optional[int] = None,
                 backend: str = "sim",
                 executor: str = "sim",
                 host: str = "127.0.0.1",
                 port: int = 0,
                 rx_ring: int = 512,
                 pace: float = 0.0,
                 **kernel_kwargs: Any):
        mode = _resolve_backend(backend, executor, shards)
        self.backend = backend
        self.executor = executor
        self.fabric: Optional[Any] = None
        self.world = None
        self.segment = None
        self.kernel = None
        self.device: Optional[SocketNetDevice] = None
        self.bridge: Optional[WallClockBridge] = None
        self._books = None
        self._closed = False
        if mode == _MODE_FABRIC:
            # Sharded machine: N kernels behind one flow-hash RX
            # boundary (DESIGN.md §17).  Keyword arguments flow to
            # :class:`~repro.shard.ShardedKernel` (mode=, ports=,
            # batch=, ...); drive it with :meth:`offer` and close with
            # :meth:`merged_books`.
            self.fabric = ShardedKernel(shards=shards, seed=seed,
                                        **kernel_kwargs)
            return
        if mode in (_MODE_AIO, _MODE_SOCKET):
            self.world = AioWorld(seed=seed, pace=pace)
            # The vsync loop needs a pumped virtual engine, which the
            # asyncio executor does not provide; wall-clock kernels run
            # headless unless the caller insists.
            kernel_kwargs.setdefault("display", False)
        else:
            self.world = SimWorld(seed=seed)
        if mode == _MODE_SOCKET:
            mac = kernel_kwargs.get("local_mac", "02:00:00:00:00:01")
            self.device = SocketNetDevice(mac, host=host, port=port,
                                          rx_ring=rx_ring)
            kernel_kwargs.setdefault("udp_sink", True)
            self.kernel = ScoutKernel(self.world, None, device=self.device,
                                      **kernel_kwargs)
            self.device.bind_metrics(self.kernel.observatory.metrics)
        else:
            self.segment = EtherSegment(self.world.engine,
                                        bandwidth_mbps=bandwidth_mbps,
                                        latency_us=latency_us,
                                        rng=self.world.rng)
            self.kernel = ScoutKernel(self.world, self.segment,
                                      **kernel_kwargs)
        if mode in (_MODE_AIO, _MODE_SOCKET):
            self.bridge = WallClockBridge(self.world.cpu)
            self.bridge.bind_metrics(self.kernel.observatory.metrics)

    @property
    def now(self) -> float:
        """Current virtual time in microseconds."""
        self._require_single_kernel("now")
        return self.world.now

    def run(self, seconds: float) -> None:
        """Advance virtual time by *seconds* (deterministic executor)."""
        self._require_single_kernel("run")
        if self.executor != "sim":
            raise ScoutError(
                "run() advances virtual time, which the asyncio "
                "executor does not replay: use 'await serve(...)' / "
                "'await settle()' inside 'async with Scout(...)'")
        self.world.run_for(seconds * 1_000_000.0)

    def _require_single_kernel(self, what: str) -> None:
        if self.fabric is not None:
            raise ScoutError(
                f"Scout(shards=N) is a fabric: {what} belongs to the "
                f"single-kernel form; use offer()/merged_books() or the "
                f"fabric attribute")

    def _require_aio(self, what: str) -> None:
        self._require_single_kernel(what)
        if self.executor != "asyncio":
            raise ScoutError(
                f"{what} needs executor='asyncio': the deterministic "
                f"executor is driven synchronously via run()")

    # -- wall-clock lifecycle ---------------------------------------------------

    async def start(self) -> None:
        """Open the backend and start the asyncio executor (idempotent)."""
        self._require_aio("start")
        if self.device is not None:
            await self.device.open()
        if self.bridge is not None and not self.bridge.running():
            self.bridge.start()
        await self.world.executor.start()

    async def serve(self, seconds: Optional[float] = None,
                    batch: int = 64) -> None:
        """Pump the backend until *seconds* elapse (or, with ``None``,
        until the device is closed), then drain the kernel.

        Socket backend: awaits bursts from the device's receive ring
        and hands them to ``kernel.rx_burst`` — the same interrupt-time
        classify/admit boundary the simulated device feeds.  Simulated
        backend: equivalent to :meth:`settle`.
        """
        self._require_aio("serve")
        await self.start()
        if self.device is None:
            await self.world.executor.drain()
            return
        loop = asyncio.get_running_loop()
        deadline = None if seconds is None else loop.time() + seconds
        while self.device.is_open or self.device.pending():
            if deadline is not None:
                remaining = deadline - loop.time()
                if remaining <= 0:
                    break
                timeout: Optional[float] = remaining
            else:
                timeout = None
            frames = await self.device.next_burst(limit=batch,
                                                  timeout=timeout)
            if frames:
                self.kernel.rx_burst(frames)
                await asyncio.sleep(0)
        await self.world.executor.drain()

    async def settle(self) -> None:
        """Run the asyncio executor until every path thread is parked."""
        self._require_aio("settle")
        await self.world.executor.drain()

    async def aclose(self) -> None:
        """Close the device and cancel the executor's tasks."""
        self._require_aio("aclose")
        if self._closed:
            return
        self._closed = True
        if self.device is not None:
            self.device.close()
        await self.world.executor.close()

    async def __aenter__(self) -> "Scout":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.aclose()

    # -- sync lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release whatever this Scout holds (idempotent).

        Fabric form: stops the workers and caches the reconciled books
        for :meth:`merged_books`.  Simulated single-kernel form: a
        definite end for ``with Scout(...)`` scripts.  The asyncio
        forms close via :meth:`aclose` (``async with``).
        """
        if self._closed:
            return
        self._closed = True
        if self.fabric is not None:
            self._books = self.fabric.finish()
        if self.device is not None:
            self.device.close()

    def __enter__(self) -> "Scout":
        if self.executor == "asyncio":
            raise ScoutError(
                "executor='asyncio' has an async lifecycle: use "
                "'async with Scout(...) as s'")
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- wall-clock bookkeeping -------------------------------------------------

    def wallclock(self) -> dict:
        """One :class:`~repro.observe.wallclock.WallClockBridge`
        snapshot: real seconds vs virtual CPU seconds charged."""
        self._require_aio("wallclock")
        return self.bridge.snapshot()

    def add_peer(self, ip: Any, mac: Any,
                 address: Optional[Tuple[str, int]] = None) -> None:
        """Teach the kernel a neighbour: ARP entry (IP -> MAC) plus,
        on the socket backend, the MAC -> UDP address mapping."""
        self._require_single_kernel("add_peer")
        self.kernel.arp.add_entry(IpAddr(ip), EthAddr(mac))
        if address is not None:
            if self.device is None:
                raise ScoutError(
                    "add_peer(address=...) maps a MAC to a UDP "
                    "address, which only backend='socket' uses")
            self.device.add_peer(mac, address)

    # -- sharded form ----------------------------------------------------------

    def offer(self, frames, metas=None):
        """Feed one frame run through the shard fabric's RX boundary."""
        if self.fabric is None:
            raise ScoutError("offer() needs Scout(shards=N)")
        return self.fabric.offer(frames, metas)

    def merged_books(self):
        """Stop the fabric's workers and return the reconciled
        :class:`~repro.shard.FabricBooks`."""
        if self.fabric is None:
            raise ScoutError("merged_books() needs Scout(shards=N)")
        if self._books is None:
            self._closed = True
            self._books = self.fabric.finish()
        return self._books

    def path(self, router: Any) -> PathBuilder:
        """A :class:`PathBuilder` rooted at *router*, pre-wired with the
        kernel's transformation rules and admission hook.  Works under
        either executor: path creation is synchronous in both."""
        self._require_single_kernel("path")
        return PathBuilder(router, transforms=self.kernel.transforms,
                           admission=self.kernel.admission)

    def stats(self) -> dict:
        self._require_single_kernel("stats")
        return self.kernel.stats()

    def __repr__(self) -> str:
        if self.fabric is not None:
            return f"<Scout fabric {self.fabric!r}>"
        tag = f"backend={self.backend} executor={self.executor}"
        if self.executor == "sim":
            return (f"<Scout {self.kernel.ip.addr} {tag} "
                    f"t={self.world.now:.0f}us>")
        return f"<Scout {self.kernel.ip.addr} {tag}>"


__all__ = [
    # entry points
    "Scout", "PathBuilder", "Testbed", "ScoutKernel", "LinuxKernel",
    "SimWorld", "EtherSegment", "Observatory",
    # wall-clock edge (backend/executor selection, DESIGN.md §18)
    "BACKENDS", "EXECUTORS", "AioWorld", "AioExecutor",
    "SocketNetDevice", "WallClockBridge",
    # multi-hop forwarding & the discovery control plane
    "Topology", "ProvisionedPath", "HostNode", "Inventory",
    "RouterKernel", "ForwardRouter", "Route", "RouteTable",
    # path architecture
    "path_create", "path_delete", "build_graph", "RouterGraph",
    "Attrs", "Msg", "MsgBatch", "Path", "PathQueue", "FlowCache",
    "FWD", "BWD", "FWD_IN", "FWD_OUT", "BWD_IN", "BWD_OUT",
    # classification
    "classify", "classify_ex", "classify_batch", "classify_or_raise",
    "ClassifyResult", "ClassifierStats",
    "SOURCE_DEMUX", "SOURCE_CACHE", "SOURCE_GROUP",
    # multipath
    "PathGroup", "PathPool",
    # shard fabric
    "ShardedKernel", "FabricBooks", "ShardBooks", "flow_key",
    "flow_key_frame",
    # attributes
    "PA_NET_PARTICIPANTS", "PA_LOCAL_PORT", "PA_PATHNAME", "PA_FRAME_RATE",
    "PA_SCHED_POLICY", "PA_SCHED_PRIORITY", "PA_INQ_LEN", "PA_OUTQ_LEN",
    "PA_MEM_BUDGET", "PA_TRACE", "PA_BATCH", "PA_SPECIALIZE",
    # scheduling policies
    "POLICY_RR", "POLICY_EDF",
    # admission
    "CpuAdmission", "MemoryAdmission", "FrameCostModel",
    "BackpressureShedder",
    # routers & net helpers the examples build graphs from
    "EthRouter", "ArpRouter", "IpRouter", "UdpRouter", "TcpRouter",
    "HttpRouter", "VfsRouter", "UfsRouter", "ScsiRouter", "DisplayRouter",
    "EthAddr", "IpAddr", "IpHeader", "UdpHeader", "TcpHeader",
    "IPPROTO_UDP", "IPPROTO_TCP", "build_udp_frame", "parse_frame",
    # clips & experiments
    "NEPTUNE", "CANYON", "FLOWER", "PAPER_CLIPS", "synthesize_clip",
    "run_edf_rr", "frames_budget",
    # faults / self-healing
    "PathWatchdog", "DegradationGovernor", "FaultyLink",
    "StageFault", "StageFaultInjector", "profile",
    # adversarial traffic & stability verdicts
    "AdversarySpec", "AdversaryInjector", "ArrivalEnvelope",
    "DropLedger", "StabilityVerdict", "VerdictEngine",
    "StarvationDetector",
    # errors
    "ScoutError", "AdmissionError", "ClassificationError",
    # tunables
    "params",
]


#: Facade names renamed during the backend/executor redesign: the old
#: spelling resolves through :func:`__getattr__` with a deprecation
#: warning naming the supported one.
_RENAMED = {
    "AsyncExecutor": "AioExecutor",
    "AsyncWorld": "AioWorld",
    "SocketDevice": "SocketNetDevice",
    "WallclockBridge": "WallClockBridge",
}


def __getattr__(name: str) -> Any:
    """Deprecation shim: resolve legacy names from the deep layers.

    Anything public that the facade does not re-export — older scripts
    reached through ``repro.api`` for names like ``MflowRouter`` during
    the facade's introduction — still resolves, with a
    :class:`DeprecationWarning` naming the supported import.  Facade
    names renamed by the wall-clock redesign (``_RENAMED``) shim the
    same way.
    """
    if name.startswith("_"):
        # Never shim private/dunder probes (the import machinery asks for
        # ``__path__``; copy/pickle ask for ``__reduce__`` and friends).
        raise AttributeError(f"module 'repro.api' has no attribute {name!r}")

    if name in _RENAMED:
        supported = _RENAMED[name]
        warnings.warn(
            f"repro.api.{name} was renamed: use repro.api.{supported}",
            DeprecationWarning, stacklevel=2)
        return globals()[supported]

    from . import core, display, fs, http, kernel, mpeg, multipath, net, sim

    for layer in (core, net, sim, kernel, mpeg, display, multipath, fs, http):
        value = getattr(layer, name, None)
        if value is not None:
            warnings.warn(
                f"repro.api.{name} is deprecated: import it from "
                f"{layer.__name__} (or use a name in repro.api.__all__)",
                DeprecationWarning, stacklevel=2)
            return value
    raise AttributeError(f"module 'repro.api' has no attribute {name!r}")
