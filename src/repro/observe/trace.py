"""Per-path tracing: where did this frame spend its virtual time?

The paper makes the path the unit of scheduling *and* accounting
(Sections 3-4); the :class:`TraceRecorder` makes that accounting legible.
Every stage traversal, queue wait, demux decision, drop, and watchdog
incident on a traced path becomes a :class:`Span` stamped in virtual
time with path/stage/direction context.

Two clocks matter and both are recorded:

* **virtual wall time** (``start_us``/``end_us``) — the engine clock.
  Stage deliver functions are logically instantaneous in virtual time, so
  a stage span's wall width is zero; a queue-wait span's wall width is the
  real time the message sat queued.
* **virtual CPU cost** (``cost_us``) — the CPU microseconds the span's
  own code declared via the message cost convention
  (:data:`repro.net.common.COST_KEY`), exclusive of nested spans.  This
  is the flamegraph weight: summed over a stack it answers "which stage
  burned the cycles".

Retention is a bounded ring buffer (oldest spans evicted first, eviction
counted), so tracing a long run cannot grow without bound.  Export
formats: JSON (one dict per span) and flamegraph-style collapsed stacks
(``frame;frame;frame weight`` lines, weight in virtual nanoseconds).

Path identity in spans is a *stable alias* (``P0``, ``P1``, ... in
instrumentation order), not the global pid, so that two same-seed runs —
whose pids differ by whatever paths earlier tests created — produce
byte-identical traces.  The golden-trace regression test depends on this.
"""

from __future__ import annotations

import hashlib
import json
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Tuple

#: Span kinds.
STAGE, TRAVERSAL, QUEUE_WAIT, DEMUX, DROP, INCIDENT = (
    "stage", "traversal", "queue_wait", "demux", "drop", "incident")


class Span:
    """One traced interval (or point event) on a path."""

    __slots__ = ("kind", "label", "path", "direction", "start_us", "end_us",
                 "cost_us", "depth", "stack", "detail")

    def __init__(self, kind: str, label: str, path: str, direction: str,
                 start_us: float, depth: int, stack: str):
        self.kind = kind
        self.label = label
        self.path = path
        self.direction = direction
        self.start_us = start_us
        self.end_us = start_us
        self.cost_us = 0.0
        self.depth = depth
        self.stack = stack
        self.detail: Optional[str] = None

    @property
    def wall_us(self) -> float:
        """Virtual wall-clock width (queue waits have one; stages don't)."""
        return self.end_us - self.start_us

    def as_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "kind": self.kind,
            "label": self.label,
            "path": self.path,
            "direction": self.direction,
            "start_us": round(self.start_us, 3),
            "end_us": round(self.end_us, 3),
            "cost_us": round(self.cost_us, 3),
            "depth": self.depth,
            "stack": self.stack,
        }
        if self.detail is not None:
            data["detail"] = self.detail
        return data

    def __repr__(self) -> str:
        return (f"<Span {self.kind} {self.stack} "
                f"[{self.start_us:.1f},{self.end_us:.1f}]us "
                f"cost={self.cost_us:.1f}us>")


class _Frame:
    """Synchronous-stack bookkeeping for exclusive-cost attribution."""

    __slots__ = ("span", "child_cost_us")

    def __init__(self, span: Span):
        self.span = span
        self.child_cost_us = 0.0


class TraceRecorder:
    """Bounded ring buffer of completed spans, with a live span stack.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current virtual time in
        microseconds (typically ``lambda: engine.now``; an object with a
        ``now`` attribute is also accepted).
    capacity:
        Ring-buffer retention (completed spans).  Older spans are evicted
        and counted in :attr:`evicted`.
    """

    def __init__(self, clock: Any, capacity: int = 65536):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.clock: Callable[[], float] = _as_clock(clock)
        self.capacity = capacity
        self.spans: deque = deque(maxlen=capacity)
        self.completed = 0
        self.evicted = 0
        self._stack: List[_Frame] = []
        self._open: Dict[Any, Span] = {}
        self._aliases: Dict[int, str] = {}

    # -- path aliasing ------------------------------------------------------

    def alias_for(self, path: Any) -> str:
        """Stable per-recorder alias for *path* (``P0``, ``P1``, ...)."""
        pid = getattr(path, "pid", id(path))
        alias = self._aliases.get(pid)
        if alias is None:
            alias = f"P{len(self._aliases)}"
            self._aliases[pid] = alias
        return alias

    # -- synchronous (nested) spans ----------------------------------------

    def begin(self, kind: str, label: str, path: str,
              direction: str = "") -> Span:
        """Open a nested span; must be closed with :meth:`end` (LIFO)."""
        if self._stack:
            stack = f"{self._stack[-1].span.stack};{label}"
        else:
            stack = f"{path};{label}"
        span = Span(kind, label, path, direction, self.clock(),
                    depth=len(self._stack), stack=stack)
        self._stack.append(_Frame(span))
        return span

    def end(self, span: Span, total_cost_us: float = 0.0,
            detail: Optional[str] = None) -> Span:
        """Close the innermost span (which must be *span*).

        ``total_cost_us`` is the span's *inclusive* virtual CPU cost; the
        recorder subtracts the cost already attributed to nested spans so
        ``span.cost_us`` is exclusive (flamegraph self time).
        """
        frame = self._stack.pop()
        if frame.span is not span:  # pragma: no cover - misuse guard
            raise RuntimeError(
                f"span stack corrupted: closing {span!r}, top is {frame.span!r}")
        span.end_us = self.clock()
        span.cost_us = max(0.0, total_cost_us - frame.child_cost_us)
        if detail is not None:
            span.detail = detail
        if self._stack:
            self._stack[-1].child_cost_us += total_cost_us
        self._record(span)
        return span

    # -- asynchronous (open/close) spans -----------------------------------

    def open(self, key: Any, kind: str, label: str, path: str,
             direction: str = "") -> Span:
        """Open a span that closes later (queue waits).  Keyed by *key*."""
        stale = self._open.pop(key, None)
        if stale is not None:
            self._finish_open(stale, detail="requeued")
        span = Span(kind, label, path, direction, self.clock(),
                    depth=0, stack=f"{path};wait:{label}")
        self._open[key] = span
        return span

    def close(self, key: Any, detail: Optional[str] = None) -> Optional[Span]:
        """Close the open span for *key*; returns it (or None if unknown)."""
        span = self._open.pop(key, None)
        if span is None:
            return None
        self._finish_open(span, detail)
        return span

    def open_count(self) -> int:
        """Open (unclosed) async spans — 0 after a clean teardown."""
        return len(self._open)

    def _finish_open(self, span: Span, detail: Optional[str]) -> None:
        span.end_us = self.clock()
        span.cost_us = span.end_us - span.start_us
        if detail is not None:
            span.detail = detail
        self._record(span)

    # -- point events --------------------------------------------------------

    def point(self, kind: str, label: str, path: str, direction: str = "",
              detail: Optional[str] = None, cost_us: float = 0.0) -> Span:
        """Record a zero-width event (drop, demux decision, incident)."""
        if self._stack:
            stack = f"{self._stack[-1].span.stack};{label}"
            depth = len(self._stack)
        else:
            stack = f"{path};{label}"
            depth = 0
        span = Span(kind, label, path, direction, self.clock(),
                    depth=depth, stack=stack)
        span.cost_us = cost_us
        span.detail = detail
        self._record(span)
        return span

    # -- retention -----------------------------------------------------------

    def _record(self, span: Span) -> None:
        if len(self.spans) == self.capacity:
            self.evicted += 1
        self.spans.append(span)
        self.completed += 1

    def clear(self) -> None:
        """Forget all completed spans (open spans and aliases survive)."""
        self.spans.clear()

    # -- export ---------------------------------------------------------------

    def to_json(self, indent: Optional[int] = None) -> str:
        """All retained spans as a JSON array, oldest first."""
        return json.dumps([span.as_dict() for span in self.spans],
                          sort_keys=True, indent=indent,
                          separators=(",", ":") if indent is None else None)

    def collapsed(self) -> Dict[str, int]:
        """Aggregate retained spans into flamegraph collapsed stacks.

        Weights are virtual **nanoseconds** (cost for synchronous spans,
        wall wait for queue spans), so sub-microsecond costs survive the
        integer conversion flamegraph tools expect.
        """
        stacks: Dict[str, int] = {}
        for span in self.spans:
            weight = int(round(span.cost_us * 1000.0))
            stacks[span.stack] = stacks.get(span.stack, 0) + weight
        return stacks

    def collapsed_text(self) -> str:
        """Collapsed stacks as sorted ``stack weight`` lines."""
        stacks = self.collapsed()
        return "\n".join(f"{stack} {weight}"
                         for stack, weight in sorted(stacks.items()))

    def digest(self) -> str:
        """sha256 over the collapsed-stack text — the golden-trace value."""
        return hashlib.sha256(self.collapsed_text().encode()).hexdigest()

    def summary(self, top: int = 10) -> List[Tuple[str, int, float, float]]:
        """Hottest span groups: ``(label, count, total_cost_us, total_wall_us)``
        sorted by total cost, then wall time, descending."""
        groups: Dict[str, List[float]] = {}
        for span in self.spans:
            entry = groups.setdefault(f"{span.kind}:{span.label}", [0, 0.0, 0.0])
            entry[0] += 1
            entry[1] += span.cost_us
            entry[2] += span.wall_us
        ranked = sorted(groups.items(),
                        key=lambda kv: (-kv[1][1], -kv[1][2], kv[0]))
        return [(label, int(count), cost, wall)
                for label, (count, cost, wall) in ranked[:top]]

    def __len__(self) -> int:
        return len(self.spans)

    def __repr__(self) -> str:
        return (f"<TraceRecorder {len(self.spans)}/{self.capacity} spans "
                f"open={len(self._open)} evicted={self.evicted}>")


def _as_clock(source: Any) -> Callable[[], float]:
    """Coerce an engine-like object or callable into a clock function."""
    if callable(source):
        return source
    if hasattr(source, "now"):
        return lambda: source.now
    raise TypeError(f"cannot use {source!r} as a virtual clock")
