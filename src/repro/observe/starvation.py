"""Per-flow starvation detection: admitted work must keep making progress.

The stability guarantee the adversarial harness checks is *no
starvation*: every flow with admitted-but-unserved messages makes
progress (a delivery) within a configurable horizon of virtual time.
The detector is event-fed — the owner calls :meth:`on_admit` when a
message of a flow is accepted onto a queue and :meth:`on_deliver` when
one is consumed — and samples periodically on the engine, so a flow that
sits waiting between events is still caught.

Violations are recorded per flow (first occurrence wins, so the report
is stable) and, when an :class:`~repro.observe.Observatory` is supplied,
surfaced as ``starvation`` incidents with the flow and the observed gap
— the same incident stream the watchdog and governor already feed.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional


class StarvationDetector:
    """Watch per-flow progress gaps against a horizon.

    Parameters
    ----------
    engine:
        Simulation engine for the sampling timer (virtual time).
    horizon_us:
        A flow waiting longer than this with pending work is starved.
    observatory:
        Optional :class:`~repro.observe.Observatory`; violations are
        recorded as incidents and the starved-flow count as a gauge.
    check_interval_us:
        Sampling period; defaults to a quarter horizon so a violation is
        detected within 1.25 horizons of its onset.
    """

    def __init__(self, engine, horizon_us: float,
                 observatory: Optional[Any] = None,
                 check_interval_us: Optional[float] = None):
        if horizon_us <= 0:
            raise ValueError("horizon must be positive")
        self.engine = engine
        self.horizon_us = horizon_us
        self.observatory = observatory
        self.check_interval_us = (check_interval_us if check_interval_us
                                  is not None else horizon_us / 4.0)
        #: flow -> messages admitted but not yet delivered.
        self._pending: Dict[Any, int] = {}
        #: flow -> virtual time the current wait-for-progress began.
        self._waiting_since: Dict[Any, float] = {}
        #: flow -> gap observed at its first violation.
        self._violations: Dict[Any, float] = {}
        self.worst_gap_us = 0.0
        self._timer = None
        self._running = False

    # -- event feed ---------------------------------------------------------

    def on_admit(self, flow: Any) -> None:
        """A message of *flow* was accepted (enqueued) for service."""
        pending = self._pending.get(flow, 0)
        self._pending[flow] = pending + 1
        if pending == 0:
            self._waiting_since[flow] = self.engine.now

    def on_deliver(self, flow: Any) -> None:
        """A message of *flow* was served: progress, the gap clock resets."""
        self._observe_gap(flow)
        pending = self._pending.get(flow, 0) - 1
        if pending <= 0:
            self._pending.pop(flow, None)
            self._waiting_since.pop(flow, None)
        else:
            self._pending[flow] = pending
            self._waiting_since[flow] = self.engine.now

    def note_gap(self, flow: Any, gap_us: float) -> None:
        """Record an externally measured progress gap (e.g. a victim
        thread timing its own wakeups) against the same horizon."""
        if gap_us > self.worst_gap_us:
            self.worst_gap_us = gap_us
        if gap_us > self.horizon_us:
            self._record_violation(flow, gap_us)

    # -- sampling -----------------------------------------------------------

    def start(self) -> "StarvationDetector":
        if not self._running:
            self._running = True
            self._timer = self.engine.schedule(self.check_interval_us,
                                               self._check)
        return self

    def stop(self) -> None:
        self._running = False
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    def _check(self) -> None:
        self._timer = None
        if not self._running:
            return
        self.scan()
        self._timer = self.engine.schedule(self.check_interval_us,
                                           self._check)

    def scan(self) -> None:
        """One sampling pass over every flow with pending work."""
        for flow in list(self._waiting_since):
            self._observe_gap(flow)

    def _observe_gap(self, flow: Any) -> None:
        since = self._waiting_since.get(flow)
        if since is None:
            return
        gap = self.engine.now - since
        if gap > self.worst_gap_us:
            self.worst_gap_us = gap
        if gap > self.horizon_us:
            self._record_violation(flow, gap)

    def _record_violation(self, flow: Any, gap_us: float) -> None:
        if flow in self._violations:
            return
        self._violations[flow] = gap_us
        if self.observatory is not None:
            self.observatory.incident(
                "starvation",
                detail=f"flow={flow} gap_us={gap_us:.0f} "
                       f"horizon_us={self.horizon_us:.0f}")
            self.observatory.metrics.gauge("starved_flows").set(
                len(self._violations))

    # -- results ------------------------------------------------------------

    def starved_flows(self) -> List[Any]:
        """Flows that ever exceeded the horizon, in first-starved order
        of flow identity (sorted for determinism)."""
        return sorted(self._violations, key=str)

    def violation_gaps(self) -> Dict[Any, float]:
        return dict(self._violations)

    def pending(self, flow: Any) -> int:
        return self._pending.get(flow, 0)

    def __repr__(self) -> str:
        return (f"<StarvationDetector horizon={self.horizon_us:.0f}us "
                f"watched={len(self._pending)} "
                f"starved={len(self._violations)}>")
