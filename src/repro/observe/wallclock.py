"""Bridge between virtual cycle accounting and wall-clock time.

Every executor — deterministic scheduler and asyncio alike — keeps the
kernel's books in *virtual* microseconds: ``Compute`` charges paths via
``Path.charge_cycles`` and advances ``cpu.compute_us``.  When the
asyncio executor serves real socket traffic those books still fill, but
nothing relates them to the seconds actually elapsing on the machine.
:class:`WallClockBridge` is that relation: a read-only sampler that
pairs the CPU model's virtual charge with ``time.monotonic()``, so a
wall-clock run can report "this load cost N virtual CPU seconds over M
real seconds" — the speed-up (or, under pacing, the slowdown) of the
reproduction relative to the modeled 300 MHz machine.

The bridge deliberately does not *charge* anything — the executors
already keep ``cpu.compute_us`` consistent (DESIGN.md §18), so a second
bookkeeper would be a double-count waiting to happen.  It only reads.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from .metrics import MetricsRegistry

__all__ = ["WallClockBridge"]


class WallClockBridge:
    """Sample virtual CPU charge against real elapsed time.

    Usage::

        bridge = WallClockBridge(world.cpu)
        bridge.start()
        ...  # serve traffic
        snap = bridge.snapshot()
        snap["wall_s"], snap["virtual_cpu_s"], snap["speedup"]
    """

    def __init__(self, cpu) -> None:
        self.cpu = cpu
        self.started_at: Optional[float] = None
        self._virtual_at_start = 0.0
        self._registry: Optional[MetricsRegistry] = None

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Mark the epoch; idempotent (a second call re-bases)."""
        self.started_at = time.monotonic()
        self._virtual_at_start = self._virtual_us()

    def running(self) -> bool:
        return self.started_at is not None

    # -- sampling ----------------------------------------------------------

    def _virtual_us(self) -> float:
        return self.cpu.compute_us + self.cpu.interrupt_us

    def wall_s(self) -> float:
        """Real seconds since :meth:`start` (0.0 before it)."""
        if self.started_at is None:
            return 0.0
        return time.monotonic() - self.started_at

    def virtual_cpu_s(self) -> float:
        """Virtual CPU seconds charged since :meth:`start`."""
        return (self._virtual_us() - self._virtual_at_start) / 1e6

    def snapshot(self) -> Dict[str, float]:
        """One reconcilable reading: wall vs virtual, plus the ratio.

        ``speedup`` > 1 means the host is replaying the modeled machine
        faster than real time; 0.0 when no wall time has elapsed yet.
        """
        wall = self.wall_s()
        virtual = self.virtual_cpu_s()
        snap = {
            "wall_s": wall,
            "virtual_cpu_s": virtual,
            "compute_us": self.cpu.compute_us,
            "interrupt_us": self.cpu.interrupt_us,
            "speedup": (virtual / wall) if wall > 0 else 0.0,
        }
        self._publish(snap)
        return snap

    # -- metrics -----------------------------------------------------------

    def bind_metrics(self, registry: MetricsRegistry) -> None:
        """Publish snapshots as gauges in *registry* (on each snapshot)."""
        self._registry = registry

    def _publish(self, snap: Dict[str, float]) -> None:
        if self._registry is None:
            return
        for name in ("wall_s", "virtual_cpu_s", "speedup"):
            self._registry.gauge(f"wallclock_{name}").set(snap[name])

    def __repr__(self) -> str:
        return (f"<WallClockBridge wall={self.wall_s():.3f}s "
                f"virtual={self.virtual_cpu_s():.6f}s>")
