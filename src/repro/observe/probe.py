"""Profiling probes: wiring the tracer and metrics onto live paths.

Instrumentation follows the paper's invariant model: whether a path is
observed is decided *at path-create time* by the ``PA_TRACE`` attribute
(:mod:`repro.core.attributes`).  When the attribute's value is an
:class:`Observatory`, phase 5 of ``path_create`` calls its
``instrument()`` hook, which

* installs a :class:`PathObserver` as ``path.observer`` — the single
  slot the core hot paths check (one attribute test when tracing is off,
  which is the entire disabled-mode overhead);
* wraps every stage's deliver functions so each stage traversal becomes a
  span whose weight is the CPU cost that stage declared;
* subscribes to all four path queues' enqueue/dequeue/drop listeners so
  every queued message gets a queue-wait span and the occupancy gauges
  and histograms stay current.

Everything is per-path: untraced paths sharing the same kernel keep their
bare hot path.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .. import params
from ..core.queues import PathQueue, QUEUE_ROLE_NAMES
from ..core.stage import DIRECTION_NAMES, brackets_downstream
from .metrics import MetricsRegistry
from .trace import (
    DEMUX,
    DROP,
    INCIDENT,
    QUEUE_WAIT,
    STAGE,
    TRAVERSAL,
    TraceRecorder,
)

#: Key under which stages accumulate CPU cost on a message (the
#: convention shared with :mod:`repro.net.common`; redeclared here so the
#: observability layer does not depend on the networking package).
COST_KEY = "cost_us"

#: Histogram bounds for deadline slack, which is legitimately negative
#: when a frame arrives after its presentation instant.
SLACK_BOUNDS = (-1_000_000.0, -100_000.0, -10_000.0, 0.0,
                10_000.0, 100_000.0, 1_000_000.0, 10_000_000.0)

#: Histogram bounds for queue depth.
DEPTH_BOUNDS = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)


class Observatory:
    """One recorder + one registry, shared by every path it instruments.

    Parameters
    ----------
    clock:
        Virtual clock: an engine-like object with ``now`` or a callable.
    capacity:
        Span ring-buffer retention.
    """

    def __init__(self, clock: Any, capacity: int = 65536):
        self.recorder = TraceRecorder(clock, capacity=capacity)
        self.metrics = MetricsRegistry()
        self.observers: Dict[int, "PathObserver"] = {}
        #: True once any path has been instrumented; cheap guard for
        #: kernel-level counters that should stay free when unused.
        self.armed = False

    def instrument(self, path: Any) -> "PathObserver":
        """Attach tracing + metrics to *path* (idempotent)."""
        existing = getattr(path, "observer", None)
        if isinstance(existing, PathObserver):
            return existing
        observer = PathObserver(self, path)
        observer.attach()
        self.observers[path.pid] = observer
        self.armed = True
        return observer

    def incident(self, kind_label: str, path: Any = None,
                 detail: Optional[str] = None) -> None:
        """Record an out-of-band incident (watchdog stall, governor step)."""
        alias = self.recorder.alias_for(path) if path is not None else "-"
        self.recorder.point(INCIDENT, kind_label, alias, detail=detail)
        self.metrics.counter("incidents_total", type=kind_label).inc()

    def __repr__(self) -> str:
        return (f"<Observatory paths={len(self.observers)} "
                f"spans={len(self.recorder)} series={len(self.metrics)}>")


class PathObserver:
    """Per-path instrumentation context installed as ``path.observer``.

    The core hot paths call the ``begin_*``/``end_*``/``on_*`` methods
    below; everything else is internal wiring.
    """

    def __init__(self, observatory: Observatory, path: Any):
        self.observatory = observatory
        self.recorder = observatory.recorder
        self.metrics = observatory.metrics
        self.path = path
        self.alias = self.recorder.alias_for(path)
        metrics = self.metrics
        alias = self.alias
        # Pre-created series so hot-path hooks never pay the registry probe.
        self._msg_counters = (
            metrics.counter("path_messages_total", path=alias, direction="FWD"),
            metrics.counter("path_messages_total", path=alias, direction="BWD"),
        )
        self._injection_counter = metrics.counter("path_injections_total",
                                                  path=alias)
        self._cycles_counter = metrics.counter("path_cycles_total", path=alias)
        self._demux_counter = metrics.counter("path_demux_total", path=alias)
        self._demux_hops = metrics.histogram(
            "path_demux_hops", bounds=(1, 2, 3, 4, 6, 8), path=alias)

    # ------------------------------------------------------------------
    # Attachment
    # ------------------------------------------------------------------

    def attach(self) -> None:
        self.path.observer = self
        for stage in self.path.stages:
            for direction in (0, 1):
                self._wrap_stage(stage, direction)
        for role, queue in enumerate(self.path.q):
            self._hook_queue(queue, QUEUE_ROLE_NAMES[role])

    def _wrap_stage(self, stage: Any, direction: int) -> None:
        label = f"{stage.router.name}.{DIRECTION_NAMES[direction]}"
        recorder = self.recorder
        alias = self.alias
        direction_name = DIRECTION_NAMES[direction]
        cost_counter = self.metrics.counter("stage_cost_us_total",
                                            path=alias, stage=label)
        hit_counter = self.metrics.counter("stage_traversals_total",
                                           path=alias, stage=label)

        def wrapper(inner):
            # Spans close after the downstream call returns, so traced
            # stages must nest recursively — never flatten past one.
            # (Observed paths take the recursive route anyway; the mark
            # keeps that true even if the observer is later detached.)
            @brackets_downstream
            def traced(iface, msg, d, **kwargs):
                meta = getattr(msg, "meta", None)
                before = meta.get(COST_KEY, 0.0) if meta is not None else 0.0
                span = recorder.begin(STAGE, label, alias, direction_name)
                try:
                    return inner(iface, msg, d, **kwargs)
                finally:
                    after = meta.get(COST_KEY, 0.0) if meta is not None \
                        else 0.0
                    recorder.end(span, total_cost_us=after - before)
                    # span.cost_us is exclusive (self time) after end(),
                    # so the counter agrees with the flamegraph weights.
                    cost_counter.inc(span.cost_us)
                    hit_counter.inc()
            return traced

        stage.wrap_deliver(direction, wrapper)

    def _hook_queue(self, queue: PathQueue, role_name: str) -> None:
        recorder = self.recorder
        alias = self.alias
        depth_gauge = self.metrics.gauge("queue_depth", path=alias,
                                         queue=role_name)
        depth_hist = self.metrics.histogram("queue_depth_at_enqueue",
                                            bounds=DEPTH_BOUNDS, path=alias,
                                            queue=role_name)
        wait_hist = self.metrics.histogram("queue_wait_us", path=alias,
                                           queue=role_name)
        drop_counter = self.metrics.counter("queue_drops_total", path=alias,
                                            queue=role_name)

        def on_enqueue(q: PathQueue) -> None:
            depth = len(q)
            depth_gauge.set(depth)
            depth_hist.observe(depth)
            item = q.last_enqueued
            if item is not None:
                recorder.open((id(q), id(item)), QUEUE_WAIT, role_name, alias)

        def on_dequeue(q: PathQueue) -> None:
            depth_gauge.set(len(q))
            item = q.last_dequeued
            if item is not None:
                span = recorder.close((id(q), id(item)))
                if span is not None:
                    wait_hist.observe(span.cost_us)

        def on_drop(q: PathQueue, item: Any, reason: str) -> None:
            depth_gauge.set(len(q))
            drop_counter.inc()
            recorder.close((id(q), id(item)), detail=f"dropped:{reason}")

        queue.on_enqueue(on_enqueue)
        queue.on_dequeue(on_dequeue)
        queue.on_drop(on_drop)

    def watch_sink(self, sink: Any) -> None:
        """Record deadline slack: how far ahead of its presentation
        instant each frame lands on the output queue.  Negative slack is a
        frame that was already late when it was produced."""
        recorder_clock = self.recorder.clock
        slack_hist = self.metrics.histogram("deadline_slack_us",
                                            bounds=SLACK_BOUNDS,
                                            path=self.alias)

        def on_enqueue(q: PathQueue) -> None:
            # The just-enqueued frame is the last of the queue, so its
            # presentation instant is next_index advanced past everything
            # ahead of it.
            index = sink.next_index + len(q) - 1
            slack_hist.observe(sink.present_time(index) - recorder_clock())

        sink.queue.on_enqueue(on_enqueue)

    # ------------------------------------------------------------------
    # Hooks called from the core hot paths
    # ------------------------------------------------------------------

    def begin_traversal(self, msg: Any, direction: int):
        """Open the whole-traversal span (``Path.deliver``)."""
        self._msg_counters[direction].inc()
        return self._begin(f"deliver.{DIRECTION_NAMES[direction]}",
                           direction, msg)

    def begin_injection(self, msg: Any, direction: int, router_name: str):
        """Open a mid-path injection span (``Path.inject_at``)."""
        self._injection_counter.inc()
        return self._begin(
            f"inject[{router_name}].{DIRECTION_NAMES[direction]}",
            direction, msg)

    def _begin(self, label: str, direction: int, msg: Any):
        meta = getattr(msg, "meta", None)
        before = meta.get(COST_KEY, 0.0) if meta is not None else 0.0
        span = self.recorder.begin(TRAVERSAL, label, self.alias,
                                   DIRECTION_NAMES[direction])
        return span, before, meta

    def end_traversal(self, token) -> None:
        span, before, meta = token
        after = meta.get(COST_KEY, 0.0) if meta is not None else 0.0
        self.recorder.end(span, total_cost_us=after - before)

    def on_cycles(self, cycles: float) -> None:
        """Mirror ``PathStats.charge_cycles`` (scheduler compute hook)."""
        self._cycles_counter.inc(cycles)

    def on_drop(self, msg: Any, reason: str, category: str) -> None:
        """Mirror ``PathStats.record_drop`` (``Path.note_drop`` hook)."""
        self.metrics.counter("path_drops_total", path=self.alias,
                             category=category).inc()
        self.recorder.point(DROP, f"drop:{category}", self.alias,
                            detail=reason)

    def on_demux(self, msg: Any, hops: int) -> None:
        """Record a classification decision that selected this path."""
        self._demux_counter.inc()
        self._demux_hops.observe(hops)
        self.recorder.point(DEMUX, "demux", self.alias,
                            detail=f"hops={hops}",
                            cost_us=hops * params.CLASSIFY_PER_HOP_US)

    def incident(self, label: str, detail: Optional[str] = None) -> None:
        self.recorder.point(INCIDENT, label, self.alias, detail=detail)
        self.metrics.counter("incidents_total", type=label).inc()

    def __repr__(self) -> str:
        return f"<PathObserver {self.alias} path#{self.path.pid}>"
