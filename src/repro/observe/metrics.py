"""Per-path metrics: counters, gauges, and histograms with a text snapshot.

The registry is the numeric face of the observability layer: queue
occupancy (fed by the queues' ``on_enqueue``/``on_dequeue`` listeners),
per-path CPU cycles, deadline slack, and drop reasons all land here as
named, labeled series.  The design goal is *reconcilability*: every
counter is bumped at the same event site that updates the corresponding
:class:`~repro.core.path.PathStats` field, so at any quiescent point
``metrics == PathAccount`` exactly — the regression test that catches
silent double-counting.

Series are identified by ``(name, sorted labels)``; ``counter()`` /
``gauge()`` / ``histogram()`` are get-or-create, so instrumentation sites
can look series up cheaply and hold the instrument object.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds, in microseconds.
DEFAULT_BOUNDS: Tuple[float, ...] = (
    1.0, 10.0, 100.0, 1_000.0, 10_000.0, 100_000.0, 1_000_000.0)

_Key = Tuple[str, Tuple[Tuple[str, str], ...]]


class _Instrument:
    """Shared identity bits of every metric series."""

    __slots__ = ("name", "labels")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]):
        self.name = name
        self.labels = labels

    def label_suffix(self) -> str:
        if not self.labels:
            return ""
        body = ",".join(f"{k}={v}" for k, v in self.labels)
        return "{" + body + "}"


class Counter(_Instrument):
    """A monotonically increasing count (messages, drops, cycles)."""

    __slots__ = ("value",)

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]):
        super().__init__(name, labels)
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def merge_from(self, other: "Counter") -> None:
        """Fold *other* into this series: counts add."""
        self.value += other.value

    def render(self) -> List[str]:
        return [f"{self.name}{self.label_suffix()} {_fmt(self.value)}"]


class Gauge(_Instrument):
    """A point-in-time level (queue depth, current frame-skip modulus)."""

    __slots__ = ("value", "max_value", "min_value")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...]):
        super().__init__(name, labels)
        self.value = 0.0
        self.max_value = float("-inf")
        self.min_value = float("inf")

    def set(self, value: float) -> None:
        self.value = value
        if value > self.max_value:
            self.max_value = value
        if value < self.min_value:
            self.min_value = value

    def merge_from(self, other: "Gauge") -> None:
        """Fold *other* into this series.

        Levels **add** (the fabric-wide occupancy is the total across
        shards) while the watermarks take the elementwise extreme (the
        worst any single shard ever saw) — both operations are
        associative and commutative, so a merge of merges equals the
        merge of the whole set in any order.
        """
        self.value += other.value
        if other.max_value > self.max_value:
            self.max_value = other.max_value
        if other.min_value < self.min_value:
            self.min_value = other.min_value

    def render(self) -> List[str]:
        hi = _fmt(self.max_value) if self.max_value != float("-inf") else "-"
        return [f"{self.name}{self.label_suffix()} {_fmt(self.value)} "
                f"(max {hi})"]


class Histogram(_Instrument):
    """A distribution over fixed bucket bounds (waits, slack, occupancy)."""

    __slots__ = ("bounds", "buckets", "count", "sum", "min", "max")

    def __init__(self, name: str, labels: Tuple[Tuple[str, str], ...],
                 bounds: Sequence[float] = DEFAULT_BOUNDS):
        super().__init__(name, labels)
        self.bounds = tuple(sorted(bounds))
        self.buckets = [0] * (len(self.bounds) + 1)  # +1 = overflow bucket
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.buckets[index] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def merge_from(self, other: "Histogram") -> None:
        """Fold *other* into this series: bucket-wise addition.

        Requires identical bucket bounds — merging differently-bucketed
        histograms would silently misplace observations, so it raises.
        """
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histogram {self.name} with bounds "
                f"{other.bounds} into bounds {self.bounds}")
        for index, n in enumerate(other.buckets):
            self.buckets[index] += n
        self.count += other.count
        self.sum += other.sum
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    def render(self) -> List[str]:
        head = (f"{self.name}{self.label_suffix()} count={self.count} "
                f"sum={_fmt(self.sum)} mean={_fmt(self.mean)}")
        if self.count:
            head += f" min={_fmt(self.min)} max={_fmt(self.max)}"
        cells = [f"le_{_fmt(bound)}={n}"
                 for bound, n in zip(self.bounds, self.buckets) if n]
        if self.buckets[-1]:
            cells.append(f"inf={self.buckets[-1]}")
        if cells:
            head += "  [" + " ".join(cells) + "]"
        return [head]


class MetricsRegistry:
    """Get-or-create registry of labeled metric series."""

    def __init__(self) -> None:
        self._series: Dict[_Key, _Instrument] = {}

    # -- creation -----------------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str, bounds: Optional[Sequence[float]] = None,
                  **labels: Any) -> Histogram:
        key = _key(name, labels)
        series = self._series.get(key)
        if series is None:
            series = Histogram(name, key[1],
                               bounds if bounds is not None else DEFAULT_BOUNDS)
            self._series[key] = series
        elif not isinstance(series, Histogram):
            raise TypeError(f"{name} already registered as "
                            f"{type(series).__name__}")
        return series

    def _get_or_create(self, klass, name: str, labels: Dict[str, Any]):
        key = _key(name, labels)
        series = self._series.get(key)
        if series is None:
            series = klass(name, key[1])
            self._series[key] = series
        elif not isinstance(series, klass):
            raise TypeError(f"{name} already registered as "
                            f"{type(series).__name__}")
        return series

    # -- lookup / aggregation ------------------------------------------------

    def get(self, name: str, **labels: Any) -> Optional[_Instrument]:
        return self._series.get(_key(name, labels))

    def series(self, name: Optional[str] = None,
               **labels: Any) -> Iterable[_Instrument]:
        """All series, optionally filtered by name and a label subset."""
        wanted = {(k, str(v)) for k, v in labels.items()}
        for (series_name, _series_labels), series in self._series.items():
            if name is not None and series_name != name:
                continue
            if wanted and not wanted.issubset(set(series.labels)):
                continue
            yield series

    def total(self, name: str, **labels: Any) -> float:
        """Sum of counter values (or gauge levels) matching the filter."""
        return sum(getattr(series, "value", 0.0)
                   for series in self.series(name, **labels))

    # -- cross-registry merge ------------------------------------------------

    def merge(self, *snapshots: "MetricsRegistry") -> "MetricsRegistry":
        """Fold every series of *snapshots* into this registry.

        The merged-books primitive of the shard fabric (DESIGN.md §17):
        each shard keeps its own registry, and the fabric-level view is
        ``MetricsRegistry().merge(*per_shard)``.  Series are matched by
        exact ``(name, labels)`` identity; counters add, gauges add their
        levels and keep the worst per-shard watermarks, histograms add
        bucket-wise.  The operation is associative and commutative (the
        property suite pins this), so shards may be merged in any order
        or in any grouping and every total equals the per-shard sum.

        A series present in a snapshot but not here is deep-copied in; a
        series registered under a different instrument type raises
        ``TypeError`` rather than guessing.  Returns ``self`` so
        ``MetricsRegistry().merge(a, b, c)`` reads as a constructor.
        """
        for snapshot in snapshots:
            for key, series in snapshot._series.items():
                mine = self._series.get(key)
                if mine is None:
                    if isinstance(series, Histogram):
                        mine = Histogram(series.name, series.labels,
                                         series.bounds)
                    else:
                        mine = type(series)(series.name, series.labels)
                    self._series[key] = mine
                elif type(mine) is not type(series):
                    raise TypeError(
                        f"{series.name} registered as "
                        f"{type(mine).__name__} here but "
                        f"{type(series).__name__} in the merged snapshot")
                mine.merge_from(series)
        return self

    # -- snapshot --------------------------------------------------------------

    def render(self, title: str = "metrics snapshot") -> str:
        """Plain-text snapshot: one sorted line per series."""
        lines = [f"# {title} ({len(self._series)} series)"]
        for key in sorted(self._series):
            lines.extend(self._series[key].render())
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, float]:
        """Flat ``name{labels} -> value`` map (histograms report counts)."""
        flat: Dict[str, float] = {}
        for key in sorted(self._series):
            series = self._series[key]
            value = getattr(series, "value", None)
            if value is None:
                value = getattr(series, "count", 0)
            flat[series.name + series.label_suffix()] = value
        return flat

    def __len__(self) -> int:
        return len(self._series)

    def __repr__(self) -> str:
        return f"<MetricsRegistry {len(self._series)} series>"


def _key(name: str, labels: Dict[str, Any]) -> _Key:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def _fmt(value: float) -> str:
    """Render numbers compactly and deterministically."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.3f}"
