"""Per-path observability: tracing, metrics, and profiling hooks.

The paper's central resource-management claim is that the path is the
unit of scheduling *and accounting*.  This package turns the write-only
counters of :class:`~repro.core.path.PathStats` into an inspectable
record: per-message spans in virtual time (:mod:`.trace`), labeled
counters/gauges/histograms (:mod:`.metrics`), and the per-path probes
that wire both onto live paths (:mod:`.probe`).

Tracing is off by default and enabled per path via the ``PA_TRACE``
creation attribute, so instrumentation itself follows the paper's
invariant model: observability is an invariant the path is created with.
"""

from .metrics import (
    DEFAULT_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .probe import Observatory, PathObserver
from .starvation import StarvationDetector
from .wallclock import WallClockBridge
from .trace import (
    DEMUX,
    DROP,
    INCIDENT,
    QUEUE_WAIT,
    STAGE,
    TRAVERSAL,
    Span,
    TraceRecorder,
)

__all__ = [
    "TraceRecorder", "Span",
    "STAGE", "TRAVERSAL", "QUEUE_WAIT", "DEMUX", "DROP", "INCIDENT",
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "DEFAULT_BOUNDS",
    "Observatory", "PathObserver", "StarvationDetector",
    "WallClockBridge",
]
