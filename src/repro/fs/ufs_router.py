"""The UFS router: the filesystem as a path stage.

The interesting Scout property demonstrated here is invariant
exploitation at creation time: a file path is created with ``PA_FILE``
naming the file, so the UFS stage resolves the inode *once*, during
establish — the per-request fast path then goes straight from file
offsets to sector numbers with no name lookups.  (This is the file-system
analogue of IP freezing its route.)  A ``PA_FILE_SEQUENTIAL`` invariant
additionally tells the stage the file will be read in order — the paper's
example of global knowledge ("the fact that data is accessed sequentially
may mean that it is best to avoid caching in the file system") — which
the stage honours by skipping its block cache.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.attributes import Attrs
from ..core.errors import PathCreationError
from ..core.graph import register_router
from ..core.interfaces import FsIface
from ..core.router import DemuxResult, NextHop, Router, Service
from ..core.stage import BWD, FWD, Stage, forward
from ..net.common import charge, forward_or_deposit
from .messages import BlockReply, BlockRequest, FsReply, FsRequest
from .ufs import FsError, Ufs

#: Per-request filesystem bookkeeping cost.
UFS_PROC_US = 8.0

#: Path attribute: the file this path is bound to (relative to the
#: filesystem root once VFS has stripped the mount prefix).
PA_FILE = "PA_FILE"

#: Path attribute: promise of strictly sequential access (Section 2.2's
#: web-path invariant); the UFS stage skips caching when it holds.
PA_FILE_SEQUENTIAL = "PA_FILE_SEQUENTIAL"


class UfsStage(Stage):
    """UFS's contribution to a file path (one per open file)."""

    def __init__(self, router: "UfsRouter", enter_service, exit_service,
                 filename: str):
        super().__init__(router, enter_service, exit_service,
                         iface_factory=FsIface)
        self.filename = filename
        self.inode = None
        self.sequential = False
        self._cache: Dict[int, bytes] = {}
        self.cache_hits = 0
        self._pending: Dict[int, dict] = {}
        self._tag_counter = 0
        self.set_deliver(FWD, self._request)
        self.set_deliver(BWD, self._block_reply)

    def establish(self, attrs: Attrs) -> None:
        """Resolve the inode once — the path's frozen name lookup."""
        router: UfsRouter = self.router  # type: ignore[assignment]
        try:
            self.inode = router.fs.lookup(self.filename)
        except FsError as exc:
            raise PathCreationError(
                f"{router.name}: cannot open {self.filename!r}: {exc}"
            ) from exc
        self.sequential = bool(attrs.get(PA_FILE_SEQUENTIAL))

    # -- requests travel FWD (toward the disk) -------------------------------

    def _request(self, iface, request, direction: int, **kwargs):
        router: UfsRouter = self.router  # type: ignore[assignment]
        if not isinstance(request, FsRequest):
            return None
        charge(request, UFS_PROC_US)
        if request.op == FsRequest.STAT:
            return self._deposit_reply(FsReply(request, size=self.inode.size))
        if request.op != FsRequest.READ:
            return self._deposit_reply(FsReply(
                request, error=f"op {request.op!r} not supported on paths "
                "(use the router API)"))
        return self._read(iface, request, direction, **kwargs)

    def _read(self, iface, request: FsRequest, direction: int, **kwargs):
        router: UfsRouter = self.router  # type: ignore[assignment]
        sector_size = router.fs.sector_size
        offset = request.offset
        length = request.length if request.length is not None \
            else self.inode.size - offset
        length = max(0, min(length, self.inode.size - offset))
        first = offset // sector_size
        last = (offset + length - 1) // sector_size if length else first - 1
        wanted: List[Tuple[int, int]] = []  # (block index, sector)
        for block_index in range(first, last + 1):
            if block_index >= len(self.inode.blocks):
                break
            wanted.append((block_index, self.inode.blocks[block_index]))
        self._tag_counter += 1
        tag = self._tag_counter
        state = {"request": request, "offset": offset, "length": length,
                 "pieces": {}, "expected": len(wanted),
                 "sector_size": sector_size}
        self._pending[tag] = state
        if not wanted:  # zero-length read
            return self._complete(tag, direction)
        issued = 0
        for block_index, sector in list(wanted):
            cached = None if self.sequential else self._cache.get(sector)
            if cached is not None:
                self.cache_hits += 1
                state["pieces"][block_index] = cached
            else:
                block_request = BlockRequest(BlockRequest.READ, sector,
                                             tag=(tag, block_index))
                issued += 1
                forward(iface, block_request, direction, **kwargs)
        if not issued and len(state["pieces"]) == state["expected"]:
            return self._complete(tag, direction)
        return None

    # -- block replies travel BWD -----------------------------------------------

    def _block_reply(self, iface, reply, direction: int, **kwargs):
        if isinstance(reply, FsReply):
            # A reply already assembled below us (not used today, but a
            # stacked-filesystem configuration would produce one).
            return forward_or_deposit(iface, reply, direction, **kwargs)
        if not isinstance(reply, BlockReply) or reply.request.tag is None:
            return None
        tag, block_index = reply.request.tag
        state = self._pending.get(tag)
        if state is None:
            return None  # reply for an abandoned request
        if not reply.ok:
            request = state["request"]
            del self._pending[tag]
            return self._deposit_or_forward(
                iface, FsReply(request, error=reply.error), direction,
                **kwargs)
        if not self.sequential:
            self._cache[reply.request.sector] = reply.data
        state["pieces"][block_index] = reply.data
        if len(state["pieces"]) < state["expected"]:
            return None  # absorbed: more blocks outstanding
        return self._complete(tag, direction, iface=iface, **kwargs)

    def _complete(self, tag: int, direction: int, iface=None, **kwargs):
        state = self._pending.pop(tag)
        request: FsRequest = state["request"]
        sector_size = state["sector_size"]
        blob = b"".join(state["pieces"][index]
                        for index in sorted(state["pieces"]))
        skip = request.offset % sector_size
        data = blob[skip:skip + state["length"]]
        reply = FsReply(request, data=data, size=self.inode.size)
        charge(reply, UFS_PROC_US / 2)
        bwd_iface = iface if iface is not None else self.end[BWD]
        return forward_or_deposit(bwd_iface, reply, BWD, **kwargs)

    def _deposit_reply(self, reply: FsReply):
        return forward_or_deposit(self.end[BWD], reply, BWD)

    def _deposit_or_forward(self, iface, reply: FsReply, direction: int,
                            **kwargs):
        return forward_or_deposit(iface, reply, direction, **kwargs)


@register_router("UfsRouter")
class UfsRouter(Router):
    """The UFS filesystem router."""

    SERVICES = ("up:fs", "<disk:fsClient")

    def __init__(self, name: str, n_inodes: int = 64,
                 format_if_blank: bool = True):
        super().__init__(name)
        self.n_inodes = n_inodes
        self.format_if_blank = format_if_blank
        self.fs: Optional[Ufs] = None

    def init(self) -> None:
        super().init()
        disk_service = self.service("disk").sole_link()
        scsi, _svc = disk_service.peer_of(self.service("disk"))
        self.fs = Ufs(scsi.disk, n_inodes=self.n_inodes)
        try:
            self.fs.mount()
        except FsError:
            if not self.format_if_blank:
                raise
            self.fs.mkfs()

    def create_stage(self, enter_service: int, attrs: Attrs
                     ) -> Tuple[Optional[Stage], Optional[NextHop]]:
        enter = self.services[enter_service] if enter_service >= 0 else None
        filename = attrs.get(PA_FILE)
        if not filename:
            return None, None  # a file path needs its file invariant
        disk = self.service("disk")
        if len(disk.links) != 1:
            return None, None
        peer_router, peer_service = disk.links[0].peer_of(disk)
        stage = UfsStage(self, enter, disk, filename)
        return stage, NextHop(peer_router, peer_service, attrs)

    def demux(self, msg, service: Optional[Service],
              offset: int = 0) -> DemuxResult:
        return DemuxResult.drop(f"{self.name}: file paths are explicit")
