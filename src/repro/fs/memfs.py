"""MEMFS: a RAM filesystem router.

A second, independent implementation of the filesystem service type —
the point of typed services is that "two services can be connected by an
edge only if they are mutually compatible", so anything providing the
``fs`` interface can sit under VFS.  MEMFS keeps files in a dict (no
blocks, no disk) which makes it the natural home for ``/tmp``-style
mounts and a useful contrast to UFS in the multi-mount tests.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.attributes import Attrs
from ..core.errors import PathCreationError
from ..core.graph import register_router
from ..core.interfaces import FsIface
from ..core.router import DemuxResult, NextHop, Router, Service
from ..core.stage import BWD, FWD, Stage
from ..net.common import charge, forward_or_deposit
from .messages import FsReply, FsRequest

#: Per-request cost: cheaper than UFS (no block translation, no disk).
MEMFS_PROC_US = 2.0


class MemFsStage(Stage):
    """MEMFS's contribution to a file path (always the path's far end)."""

    def __init__(self, router: "MemFsRouter", enter_service,
                 filename: str):
        super().__init__(router, enter_service, None,
                         iface_factory=FsIface)
        self.filename = filename
        self.set_deliver(FWD, self._request)
        self.set_deliver(BWD, self._nothing_below)

    def establish(self, attrs: Attrs) -> None:
        router: MemFsRouter = self.router  # type: ignore[assignment]
        if self.filename not in router.files:
            raise PathCreationError(
                f"{router.name}: no such file {self.filename!r}")

    def _request(self, iface, request, direction: int, **kwargs):
        router: MemFsRouter = self.router  # type: ignore[assignment]
        if not isinstance(request, FsRequest):
            return None
        charge(request, MEMFS_PROC_US)
        data = router.files.get(self.filename)
        if data is None:
            reply = FsReply(request, error=f"{self.filename!r} was removed")
        elif request.op == FsRequest.STAT:
            reply = FsReply(request, size=len(data))
        elif request.op == FsRequest.READ:
            end = None if request.length is None \
                else request.offset + request.length
            reply = FsReply(request, data=data[request.offset:end],
                            size=len(data))
        elif request.op == FsRequest.WRITE:
            router.files[self.filename] = (
                data[:request.offset] + request.data
                + data[request.offset + len(request.data):])
            reply = FsReply(request, size=len(router.files[self.filename]))
        else:
            reply = FsReply(request, error=f"unknown op {request.op!r}")
        router.requests += 1
        return forward_or_deposit(self.end[BWD], reply, BWD)

    def _nothing_below(self, iface, msg, direction: int, **kwargs):
        return None


@register_router("MemFsRouter")
class MemFsRouter(Router):
    """A dict-backed filesystem providing the ``fs`` service."""

    SERVICES = ("up:fs",)

    def __init__(self, name: str):
        super().__init__(name)
        self.files: Dict[str, bytes] = {}
        self.requests = 0

    def write_file(self, name: str, data: bytes) -> None:
        self.files[name] = bytes(data)

    def read_file(self, name: str) -> bytes:
        return self.files[name]

    def create_stage(self, enter_service: int, attrs: Attrs
                     ) -> Tuple[Optional[Stage], Optional[NextHop]]:
        from .ufs_router import PA_FILE

        enter = self.services[enter_service] if enter_service >= 0 else None
        filename = attrs.get(PA_FILE)
        if not filename:
            return None, None
        return MemFsStage(self, enter, filename), None  # a leaf

    def demux(self, msg, service: Optional[Service],
              offset: int = 0) -> DemuxResult:
        return DemuxResult.drop(f"{self.name}: file paths are explicit")
