"""The SCSI router: the disk driver at the bottom of Figure 3."""

from __future__ import annotations

from typing import Optional, Tuple

from ..core.attributes import Attrs
from ..core.graph import register_router
from ..core.interfaces import FsIface
from ..core.router import DemuxResult, NextHop, Router, Service
from ..core.stage import BWD, FWD, Stage, turn_around
from .blockdev import RamDisk
from .messages import BlockReply, BlockRequest

#: DMA setup + command processing per block operation.
SCSI_OP_US = 40.0


class ScsiStage(Stage):
    """SCSI's contribution to a file path (the disk end)."""

    def __init__(self, router: "ScsiRouter", enter_service):
        super().__init__(router, enter_service, None,
                         iface_factory=FsIface)
        self.set_deliver(FWD, self._execute)
        self.set_deliver(BWD, self._unused_bwd)

    def _execute(self, iface, request, direction: int, **kwargs):
        router: ScsiRouter = self.router  # type: ignore[assignment]
        if not isinstance(request, BlockRequest):
            return None  # only block requests make sense at a disk
        reply = router.execute(request)
        reply.meta["cost_us"] = request.meta.get("cost_us", 0.0) + SCSI_OP_US
        return turn_around(iface, reply, direction, **kwargs)

    def _unused_bwd(self, iface, msg, direction: int, **kwargs):
        return None  # nothing ever enters a disk from below


@register_router("ScsiRouter")
class ScsiRouter(Router):
    """Driver for one (RAM-backed) disk."""

    SERVICES = ("ops:fs",)

    def __init__(self, name: str, sectors: int = 4096,
                 sector_size: int = 512):
        super().__init__(name)
        self.disk = RamDisk(sectors=sectors, sector_size=sector_size)
        self.ops_executed = 0

    def execute(self, request: BlockRequest) -> BlockReply:
        self.ops_executed += 1
        try:
            if request.op == BlockRequest.READ:
                return BlockReply(request,
                                  data=self.disk.read_sector(request.sector))
            if request.op == BlockRequest.WRITE:
                self.disk.write_sector(request.sector, request.data)
                return BlockReply(request)
            return BlockReply(request, error=f"unknown op {request.op!r}")
        except (IndexError, ValueError) as exc:
            return BlockReply(request, error=str(exc))

    def create_stage(self, enter_service: int, attrs: Attrs
                     ) -> Tuple[Stage, Optional[NextHop]]:
        enter = self.services[enter_service] if enter_service >= 0 else None
        return ScsiStage(self, enter), None  # always a leaf

    def demux(self, msg, service: Optional[Service],
              offset: int = 0) -> DemuxResult:
        return DemuxResult.drop(f"{self.name}: disks do not classify")
