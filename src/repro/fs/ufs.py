"""A small UNIX-flavoured filesystem on a block device.

This is the UFS router's on-disk logic for the Figure 3 web-server graph:
a real (if compact) filesystem — superblock, inode table, a flat root
directory, direct block pointers, a free-block bitmap — not a dict
masquerading as one.  Everything round-trips through the sector interface
so the SCSI access statistics mean something.

Layout (sector granularity)::

    sector 0                superblock
    sectors 1..NI           inode table (8 inodes per sector)
    sector  NI+1            block allocation bitmap
    sectors NI+2..          data blocks

Inode 0 is the root directory.  Filenames are flat (no subdirectories —
the paper's web server serves a handful of documents; hierarchy would be
mechanical and is documented as out of scope).
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional

from .blockdev import RamDisk

MAGIC = 0x53465355  # "USFS"
INODE_SIZE = 64
DIRECT_BLOCKS = 12
DIR_ENTRY_SIZE = 32  # 28-byte name + 4-byte inode number
MAX_NAME = 27

_SUPER_FORMAT = "!IHHHH"  # magic, n_inodes, bitmap_sector, data_start, n_sectors


class FsError(Exception):
    """Filesystem-level failure (no space, missing file, bad name)."""


class Inode:
    __slots__ = ("number", "used", "links", "size", "blocks")

    def __init__(self, number: int):
        self.number = number
        self.used = False
        self.links = 0
        self.size = 0
        self.blocks: List[int] = [0] * DIRECT_BLOCKS

    def pack(self) -> bytes:
        body = struct.pack("!BxHI", 1 if self.used else 0, self.links,
                           self.size)
        body += struct.pack("!" + "H" * DIRECT_BLOCKS, *self.blocks)
        return body + b"\x00" * (INODE_SIZE - len(body))

    @classmethod
    def unpack(cls, number: int, data: bytes) -> "Inode":
        inode = cls(number)
        used, links, size = struct.unpack("!BxHI", data[:8])
        inode.used = bool(used)
        inode.links = links
        inode.size = size
        inode.blocks = list(struct.unpack(
            "!" + "H" * DIRECT_BLOCKS, data[8:8 + 2 * DIRECT_BLOCKS]))
        return inode


class Ufs:
    """The mounted filesystem object."""

    def __init__(self, disk: RamDisk, n_inodes: int = 64):
        self.disk = disk
        self.n_inodes = n_inodes
        self.sector_size = disk.sector_size
        self._inodes_per_sector = self.sector_size // INODE_SIZE
        self._inode_sectors = -(-n_inodes // self._inodes_per_sector)
        self.bitmap_sector = 1 + self._inode_sectors
        self.data_start = self.bitmap_sector + 1
        self.mounted = False

    # -- formatting and mounting ------------------------------------------------

    def mkfs(self) -> "Ufs":
        """Format the disk and create an empty root directory."""
        super_block = struct.pack(_SUPER_FORMAT, MAGIC, self.n_inodes,
                                  self.bitmap_sector, self.data_start,
                                  self.disk.sectors)
        self.disk.write_sector(0, super_block)
        for sector in range(1, self.data_start):
            self.disk.write_sector(sector, b"\x00" * self.sector_size)
        root = Inode(0)
        root.used = True
        root.links = 1
        self._write_inode(root)
        self.mounted = True
        return self

    def mount(self) -> "Ufs":
        """Verify the superblock and go live."""
        raw = self.disk.read_sector(0)
        magic, n_inodes, bitmap, data_start, n_sectors = struct.unpack(
            _SUPER_FORMAT, raw[:struct.calcsize(_SUPER_FORMAT)])
        if magic != MAGIC:
            raise FsError(f"bad superblock magic 0x{magic:08x}")
        if n_sectors != self.disk.sectors:
            raise FsError("superblock geometry does not match the disk")
        self.n_inodes = n_inodes
        self.bitmap_sector = bitmap
        self.data_start = data_start
        self.mounted = True
        return self

    def _require_mounted(self) -> None:
        if not self.mounted:
            raise FsError("filesystem is not mounted")

    # -- inode table ---------------------------------------------------------------

    def _inode_location(self, number: int):
        if not 0 <= number < self.n_inodes:
            raise FsError(f"inode {number} out of range")
        sector = 1 + number // self._inodes_per_sector
        offset = (number % self._inodes_per_sector) * INODE_SIZE
        return sector, offset

    def read_inode(self, number: int) -> Inode:
        sector, offset = self._inode_location(number)
        raw = self.disk.read_sector(sector)
        return Inode.unpack(number, raw[offset:offset + INODE_SIZE])

    def _write_inode(self, inode: Inode) -> None:
        sector, offset = self._inode_location(inode.number)
        raw = bytearray(self.disk.read_sector(sector))
        raw[offset:offset + INODE_SIZE] = inode.pack()
        self.disk.write_sector(sector, bytes(raw))

    def _alloc_inode(self) -> Inode:
        for number in range(1, self.n_inodes):  # 0 is the root
            inode = self.read_inode(number)
            if not inode.used:
                inode.used = True
                inode.links = 1
                inode.size = 0
                inode.blocks = [0] * DIRECT_BLOCKS
                self._write_inode(inode)
                return inode
        raise FsError("out of inodes")

    # -- block allocation --------------------------------------------------------------

    def _alloc_block(self) -> int:
        bitmap = bytearray(self.disk.read_sector(self.bitmap_sector))
        data_sectors = self.disk.sectors - self.data_start
        for index in range(data_sectors):
            byte, bit = divmod(index, 8)
            if byte >= len(bitmap):
                break
            if not bitmap[byte] & (1 << bit):
                bitmap[byte] |= 1 << bit
                self.disk.write_sector(self.bitmap_sector, bytes(bitmap))
                return self.data_start + index
        raise FsError("out of disk blocks")

    def _free_block(self, sector: int) -> None:
        index = sector - self.data_start
        bitmap = bytearray(self.disk.read_sector(self.bitmap_sector))
        byte, bit = divmod(index, 8)
        bitmap[byte] &= ~(1 << bit) & 0xFF
        self.disk.write_sector(self.bitmap_sector, bytes(bitmap))

    def blocks_free(self) -> int:
        bitmap = self.disk.read_sector(self.bitmap_sector)
        data_sectors = self.disk.sectors - self.data_start
        used = 0
        for index in range(data_sectors):
            byte, bit = divmod(index, 8)
            if bitmap[byte] & (1 << bit):
                used += 1
        return data_sectors - used

    # -- directory (flat root) ------------------------------------------------------------

    def _dir_entries(self) -> Dict[str, int]:
        root = self.read_inode(0)
        entries: Dict[str, int] = {}
        raw = self._read_inode_data(root)
        for offset in range(0, root.size, DIR_ENTRY_SIZE):
            chunk = raw[offset:offset + DIR_ENTRY_SIZE]
            name = chunk[:MAX_NAME + 1].rstrip(b"\x00").decode("utf-8")
            (number,) = struct.unpack("!I", chunk[28:32])
            if name:
                entries[name] = number
        return entries

    def lookup(self, name: str) -> Inode:
        self._require_mounted()
        entries = self._dir_entries()
        if name not in entries:
            raise FsError(f"no such file: {name!r}")
        return self.read_inode(entries[name])

    def listdir(self) -> List[str]:
        self._require_mounted()
        return sorted(self._dir_entries())

    def create(self, name: str) -> Inode:
        self._require_mounted()
        if not name or len(name.encode("utf-8")) > MAX_NAME:
            raise FsError(f"bad file name {name!r} (max {MAX_NAME} bytes)")
        if "/" in name:
            raise FsError("subdirectories are out of scope (flat root only)")
        if name in self._dir_entries():
            raise FsError(f"file exists: {name!r}")
        inode = self._alloc_inode()
        entry = name.encode("utf-8").ljust(28, b"\x00") \
            + struct.pack("!I", inode.number)
        root = self.read_inode(0)
        self._append_inode_data(root, entry)
        return inode

    def unlink(self, name: str) -> None:
        self._require_mounted()
        entries = self._dir_entries()
        if name not in entries:
            raise FsError(f"no such file: {name!r}")
        victim = self.read_inode(entries[name])
        for sector in victim.blocks:
            if sector:
                self._free_block(sector)
        victim.used = False
        self._write_inode(victim)
        # Rewrite the directory without the entry.
        root = self.read_inode(0)
        survivors = [(n, i) for n, i in entries.items() if n != name]
        blob = b"".join(
            n.encode("utf-8").ljust(28, b"\x00") + struct.pack("!I", i)
            for n, i in survivors)
        self._truncate_inode(root)
        self._append_inode_data(root, blob)

    # -- file data ----------------------------------------------------------------------------

    def _read_inode_data(self, inode: Inode) -> bytes:
        out = bytearray()
        remaining = inode.size
        for sector in inode.blocks:
            if remaining <= 0:
                break
            if not sector:
                out += b"\x00" * min(remaining, self.sector_size)
            else:
                out += self.disk.read_sector(sector)[:remaining]
            remaining -= self.sector_size
        return bytes(out[: inode.size])

    def _truncate_inode(self, inode: Inode) -> None:
        for sector in inode.blocks:
            if sector:
                self._free_block(sector)
        inode.blocks = [0] * DIRECT_BLOCKS
        inode.size = 0
        self._write_inode(inode)

    def _append_inode_data(self, inode: Inode, data: bytes) -> None:
        current = self._read_inode_data(inode)
        self._truncate_inode(inode)
        self._write_blob(inode, current + data)

    def _write_blob(self, inode: Inode, blob: bytes) -> None:
        max_size = DIRECT_BLOCKS * self.sector_size
        if len(blob) > max_size:
            raise FsError(f"file too large ({len(blob)} > {max_size} bytes; "
                          "indirect blocks are out of scope)")
        for index in range(0, len(blob), self.sector_size):
            sector = self._alloc_block()
            inode.blocks[index // self.sector_size] = sector
            self.disk.write_sector(sector, blob[index:index + self.sector_size])
        inode.size = len(blob)
        self._write_inode(inode)

    def write_file(self, name: str, data: bytes) -> Inode:
        """Create-or-replace *name* with *data*."""
        self._require_mounted()
        try:
            inode = self.lookup(name)
            self._truncate_inode(inode)
        except FsError:
            inode = self.create(name)
        self._write_blob(inode, data)
        return inode

    def read_file(self, name: str, offset: int = 0,
                  length: Optional[int] = None) -> bytes:
        self._require_mounted()
        inode = self.lookup(name)
        data = self._read_inode_data(inode)
        if length is None:
            return data[offset:]
        return data[offset:offset + length]

    def read_inode_range(self, inode: Inode, offset: int, length: int) -> bytes:
        """Sequential read through an already-resolved inode (what a file
        path's UFS stage does — the lookup happened at path creation)."""
        return self._read_inode_data(inode)[offset:offset + length]

    def __repr__(self) -> str:
        state = "mounted" if self.mounted else "unmounted"
        return f"<Ufs {state} inodes={self.n_inodes} on {self.disk!r}>"
