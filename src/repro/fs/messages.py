"""Messages that flow along file paths.

File paths carry typed request/reply objects rather than wire bytes: the
paper's path model is agnostic to what a "message" is (the MPEG path
forwards decoded frames between MPEG and DISPLAY the same way).  Requests
travel FWD (toward the disk), replies are turned around and travel BWD.
"""

from __future__ import annotations

from typing import Any, Dict, Optional


class FsRequest:
    """A file-level operation entering at the top of a file path."""

    __slots__ = ("op", "offset", "length", "data", "meta")

    READ = "read"
    WRITE = "write"
    STAT = "stat"

    def __init__(self, op: str, offset: int = 0,
                 length: Optional[int] = None, data: bytes = b""):
        if op not in (self.READ, self.WRITE, self.STAT):
            raise ValueError(f"unknown fs op {op!r}")
        self.op = op
        self.offset = offset
        self.length = length
        self.data = data
        self.meta: Dict[str, Any] = {}

    def __repr__(self) -> str:
        return f"<FsRequest {self.op} off={self.offset} len={self.length}>"


class FsReply:
    """The answer to an FsRequest, traveling back up the path."""

    __slots__ = ("request", "data", "size", "error", "meta")

    def __init__(self, request: FsRequest, data: bytes = b"",
                 size: int = 0, error: Optional[str] = None):
        self.request = request
        self.data = data
        self.size = size
        self.error = error
        self.meta: Dict[str, Any] = {}

    @property
    def ok(self) -> bool:
        return self.error is None

    def __repr__(self) -> str:
        state = "ok" if self.ok else f"error={self.error!r}"
        return f"<FsReply {self.request.op} {state} {len(self.data)}B>"


class BlockRequest:
    """A sector-level operation UFS forwards down to SCSI."""

    __slots__ = ("op", "sector", "data", "tag", "meta")

    READ = "read"
    WRITE = "write"

    def __init__(self, op: str, sector: int, data: bytes = b"",
                 tag: Any = None):
        self.op = op
        self.sector = sector
        self.data = data
        self.tag = tag  # correlates the reply with the issuing request
        self.meta: Dict[str, Any] = {}

    def __repr__(self) -> str:
        return f"<BlockRequest {self.op} sector={self.sector}>"


class BlockReply:
    """SCSI's answer to a BlockRequest."""

    __slots__ = ("request", "data", "error", "meta")

    def __init__(self, request: BlockRequest, data: bytes = b"",
                 error: Optional[str] = None):
        self.request = request
        self.data = data
        self.error = error
        self.meta: Dict[str, Any] = {}

    @property
    def ok(self) -> bool:
        return self.error is None

    def __repr__(self) -> str:
        return f"<BlockReply sector={self.request.sector} " \
               f"{'ok' if self.ok else self.error}>"
