"""The VFS router: mount table and pass-through (Figure 3's middle layer)."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.attributes import Attrs
from ..core.graph import register_router
from ..core.interfaces import FsIface
from ..core.router import DemuxResult, NextHop, Router, Service
from ..core.stage import BWD, FWD, Stage
from ..net.common import charge, forward_or_deposit
from .ufs_router import PA_FILE

#: Per-request VFS dispatch cost.
VFS_PROC_US = 2.0


class VfsStage(Stage):
    """VFS's contribution: a frozen mount decision, then pass-through."""

    def __init__(self, router: "VfsRouter", enter_service, exit_service):
        super().__init__(router, enter_service, exit_service,
                         iface_factory=FsIface)
        self.set_deliver(FWD, self._down)
        self.set_deliver(BWD, self._up)

    def _down(self, iface, msg, direction: int, **kwargs):
        charge(msg, VFS_PROC_US)
        return forward_or_deposit(iface, msg, direction, **kwargs)

    def _up(self, iface, msg, direction: int, **kwargs):
        return forward_or_deposit(iface, msg, direction, **kwargs)


@register_router("VfsRouter")
class VfsRouter(Router):
    """Routes file paths to the filesystem mounted at their prefix."""

    SERVICES = ("up:fs", "<mounts:fsClient")

    def __init__(self, name: str):
        super().__init__(name)
        #: mount prefix -> mounted router name (e.g. "/" -> "UFS").
        self._mount_table: Dict[str, str] = {}

    def mount(self, prefix: str, router_name: str) -> None:
        if not prefix.startswith("/"):
            raise ValueError(f"mount prefix must be absolute: {prefix!r}")
        self._mount_table[prefix.rstrip("/") or "/"] = router_name

    def resolve_mount(self, filename: str) -> Tuple[str, str]:
        """Longest-prefix match: returns (router name, relative name)."""
        best: Optional[str] = None
        for prefix in self._mount_table:
            if filename == prefix or filename.startswith(
                    prefix if prefix.endswith("/") else prefix + "/") \
                    or prefix == "/":
                if best is None or len(prefix) > len(best):
                    best = prefix
        if best is None:
            raise KeyError(f"no filesystem mounted for {filename!r}")
        relative = filename[len(best):].lstrip("/")
        return self._mount_table[best], relative

    def create_stage(self, enter_service: int, attrs: Attrs
                     ) -> Tuple[Optional[Stage], Optional[NextHop]]:
        enter = self.services[enter_service] if enter_service >= 0 else None
        filename = attrs.get(PA_FILE)
        if not filename:
            return None, None
        try:
            fs_name, relative = self.resolve_mount(filename)
        except KeyError:
            return None, None  # nothing mounted there: path cannot exist
        mounts = self.service("mounts")
        target = None
        for link in mounts.links:
            peer_router, peer_service = link.peer_of(mounts)
            if peer_router.name == fs_name:
                target = (peer_router, peer_service)
                break
        if target is None:
            return None, None
        stage = VfsStage(self, enter, mounts)
        hop_attrs = attrs.extended(**{PA_FILE: relative})
        return stage, NextHop(target[0], target[1], hop_attrs)

    def demux(self, msg, service: Optional[Service],
              offset: int = 0) -> DemuxResult:
        return DemuxResult.drop(f"{self.name}: file paths are explicit")
