"""A RAM-backed block device: the storage behind the SCSI router.

The paper's Figure 3 web-server graph bottoms out at a SCSI driver; this
is its disk.  Sector-addressed, with access statistics the file-system
experiments read.
"""

from __future__ import annotations

from typing import List


class RamDisk:
    """A fixed-geometry in-memory disk."""

    def __init__(self, sectors: int = 4096, sector_size: int = 512):
        if sectors <= 0 or sector_size <= 0:
            raise ValueError("disk geometry must be positive")
        self.sectors = sectors
        self.sector_size = sector_size
        self._data: List[bytearray] = [bytearray(sector_size)
                                       for _ in range(sectors)]
        self.reads = 0
        self.writes = 0

    @property
    def capacity_bytes(self) -> int:
        return self.sectors * self.sector_size

    def _check(self, sector: int) -> None:
        if not 0 <= sector < self.sectors:
            raise IndexError(f"sector {sector} out of range "
                             f"(disk has {self.sectors})")

    def read_sector(self, sector: int) -> bytes:
        self._check(sector)
        self.reads += 1
        return bytes(self._data[sector])

    def write_sector(self, sector: int, data: bytes) -> None:
        self._check(sector)
        if len(data) > self.sector_size:
            raise ValueError(f"{len(data)} bytes exceed the "
                             f"{self.sector_size}-byte sector")
        self.writes += 1
        padded = bytes(data) + b"\x00" * (self.sector_size - len(data))
        self._data[sector] = bytearray(padded)

    def __repr__(self) -> str:
        return (f"<RamDisk {self.sectors}x{self.sector_size}B "
                f"r={self.reads} w={self.writes}>")
