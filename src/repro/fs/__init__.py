"""Storage substrate: SCSI/UFS/VFS for the Figure 3 web-server graph."""

from .blockdev import RamDisk
from .memfs import MEMFS_PROC_US, MemFsRouter, MemFsStage
from .messages import BlockReply, BlockRequest, FsReply, FsRequest
from .scsi import SCSI_OP_US, ScsiRouter, ScsiStage
from .ufs import DIRECT_BLOCKS, FsError, Inode, Ufs
from .ufs_router import PA_FILE, PA_FILE_SEQUENTIAL, UFS_PROC_US, UfsRouter, UfsStage
from .vfs import VFS_PROC_US, VfsRouter, VfsStage

__all__ = [
    "RamDisk",
    "FsRequest", "FsReply", "BlockRequest", "BlockReply",
    "ScsiRouter", "ScsiStage", "SCSI_OP_US",
    "Ufs", "Inode", "FsError", "DIRECT_BLOCKS",
    "UfsRouter", "UfsStage", "UFS_PROC_US",
    "PA_FILE", "PA_FILE_SEQUENTIAL",
    "VfsRouter", "VfsStage", "VFS_PROC_US",
    "MemFsRouter", "MemFsStage", "MEMFS_PROC_US",
]
