"""The topology controller: declare, discover, provision.

:class:`Topology` is the control plane over one sim world.  Segments,
hosts and routers are declared by name; :meth:`Topology.discover` probes
the wires into an :class:`~repro.topo.inventory.Inventory`; and
:meth:`Topology.provision` turns a (src, dst) intent into a working
end-to-end path — it computes the hop chain, installs the forward and
reverse host routes plus default gateways on the end stations, refreshes
every hop's neighbour tables (routers boot before hosts exist, so ARP
must be re-learned at provision time), brings up the sender and sink
transport paths, and optionally runs the active DF-probe loop until the
sender's path-MTU estimate converges on the chain's minimum link MTU.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from .. import params
from ..core.path import Path
from ..net.addresses import IpAddr
from ..net.headers import IcmpHeader, IpHeader
from ..net.packets import build_icmp_echo
from ..net.segment import EtherSegment, HostAgent
from ..kernel.router import RouterKernel
from ..sim.world import SimWorld
from .host import HostNode
from .inventory import DeviceRecord, Inventory, LinkRecord

#: Ident space for the controller's DF probes, distinct per probe run.
_probe_idents = itertools.count(0x7000)


class ProvisionedPath:
    """A live end-to-end path handed back by :meth:`Topology.provision`."""

    def __init__(self, src: HostNode, dst: HostNode, chain: List[str],
                 path: Path, sink_path: Path, sport: int, dport: int,
                 pmtu: Optional[int]):
        self.src = src
        self.dst = dst
        self.chain = chain        # node names, src..dst
        self.path = path          # sender-side TEST path
        self.sink_path = sink_path  # receiver-side TEST path
        self.sport = sport
        self.dport = dport
        self.pmtu = pmtu          # converged estimate, None if not probed

    @property
    def dst_ip(self) -> IpAddr:
        return self.dst.ip.addr

    def send(self, payload: bytes) -> None:
        self.src.send(self.path, payload)

    def send_stream(self, data: bytes, mss: Optional[int] = None) -> int:
        return self.src.send_stream(self.path, data, mss=mss)

    def mss(self) -> int:
        return self.src.mss(self.dst_ip)

    def received_payloads(self) -> List[bytes]:
        return self.dst.received_payloads()

    def received_bytes(self) -> bytes:
        return b"".join(self.received_payloads())

    def __repr__(self) -> str:
        return (f"<ProvisionedPath {'->'.join(self.chain)} "
                f"pmtu={self.pmtu}>")


class Topology:
    """Declarative builder + discovery control plane for one sim world."""

    def __init__(self, world: SimWorld):
        self.world = world
        self.segments: Dict[str, EtherSegment] = {}
        self.segment_mtus: Dict[str, int] = {}
        self.hosts: Dict[str, HostNode] = {}
        self.routers: Dict[str, RouterKernel] = {}
        #: node name -> {segment name -> node's IP on that segment}
        self._attachments: Dict[str, Dict[str, IpAddr]] = {}

    # -- declaration -------------------------------------------------------

    def segment(self, name: str, mtu: int = params.ETH_MTU,
                bandwidth_mbps: Optional[float] = None,
                latency_us: Optional[float] = None,
                **seg_kwargs) -> EtherSegment:
        if name in self.segments:
            raise ValueError(f"duplicate segment {name!r}")
        seg = self.world.new_segment(bandwidth_mbps=bandwidth_mbps,
                                     latency_us=latency_us, **seg_kwargs)
        self.segments[name] = seg
        self.segment_mtus[name] = mtu
        return seg

    def host(self, name: str, segment_name: str, ip,
             **host_kwargs) -> HostNode:
        if name in self.hosts or name in self.routers:
            raise ValueError(f"duplicate node {name!r}")
        seg = self.segments[segment_name]
        host_kwargs.setdefault("mtu", self.segment_mtus[segment_name])
        node = HostNode(self.world, seg, name, ip, **host_kwargs)
        self.hosts[name] = node
        self._attachments[name] = {segment_name: IpAddr(ip)}
        return node

    def router(self, name: str,
               ports: Dict[str, Tuple[str, str]],
               inq_len: int = 64) -> RouterKernel:
        """Declare a router: *ports* maps port name -> (segment, ip)."""
        if name in self.hosts or name in self.routers:
            raise ValueError(f"duplicate node {name!r}")
        kernel = RouterKernel(self.world, name=name, inq_len=inq_len)
        attach: Dict[str, IpAddr] = {}
        for port_name, (segment_name, ip) in ports.items():
            kernel.add_port(port_name, self.segments[segment_name], ip,
                            mtu=self.segment_mtus[segment_name])
            attach[segment_name] = IpAddr(ip)
        kernel.boot()
        self.routers[name] = kernel
        self._attachments[name] = attach
        return kernel

    # -- discovery ---------------------------------------------------------

    def discover(self) -> Inventory:
        """Probe every wire into a device/link inventory."""
        devices: List[DeviceRecord] = []
        links: List[LinkRecord] = []
        for seg_name, seg in self.segments.items():
            attached: List[str] = []
            for endpoint in seg.endpoints():
                record = self._identify(endpoint, seg_name)
                devices.append(record)
                if record.node not in attached:
                    attached.append(record.node)
            links.append(LinkRecord(seg_name, self.segment_mtus[seg_name],
                                    seg.bandwidth_mbps, seg.latency_us,
                                    attached))
        return Inventory(devices, links)

    def _identify(self, endpoint, seg_name: str) -> DeviceRecord:
        mac = str(endpoint.mac)
        ip = getattr(endpoint, "ip", None)
        for name, host in self.hosts.items():
            if endpoint is host.device:
                return DeviceRecord(name, "host", mac, str(ip), seg_name,
                                    host.eth.mtu)
        for name, kernel in self.routers.items():
            for port in kernel.ports.values():
                if endpoint is port.device:
                    return DeviceRecord(name, "router", mac, str(ip),
                                        seg_name, port.mtu)
        kind = "agent" if isinstance(endpoint, HostAgent) else "device"
        return DeviceRecord(mac, kind, mac,
                            str(ip) if ip is not None else None,
                            seg_name, None)

    # -- provisioning ------------------------------------------------------

    def hop_chain(self, src_name: str, dst_name: str) -> List[str]:
        """BFS the node<->segment graph for the shortest node chain."""
        if src_name not in self._attachments:
            raise KeyError(src_name)
        if dst_name not in self._attachments:
            raise KeyError(dst_name)
        # segment -> nodes attached to it
        on_segment: Dict[str, List[str]] = {}
        for node, segs in self._attachments.items():
            for seg_name in segs:
                on_segment.setdefault(seg_name, []).append(node)
        frontier = [src_name]
        parent: Dict[str, Optional[str]] = {src_name: None}
        while frontier:
            nxt: List[str] = []
            for node in frontier:
                for seg_name in self._attachments[node]:
                    for neighbor in on_segment.get(seg_name, ()):
                        if neighbor not in parent:
                            parent[neighbor] = node
                            nxt.append(neighbor)
            if dst_name in parent:
                break
            frontier = nxt
        if dst_name not in parent:
            raise ValueError(f"no wire chain {src_name} -> {dst_name}")
        chain = [dst_name]
        while parent[chain[-1]] is not None:
            chain.append(parent[chain[-1]])
        chain.reverse()
        return chain

    def _shared_segment(self, a: str, b: str) -> str:
        for seg_name in self._attachments[a]:
            if seg_name in self._attachments[b]:
                return seg_name
        raise ValueError(f"{a} and {b} share no segment")

    def _install_route(self, router_name: str, target_ip: IpAddr,
                       next_node: str) -> None:
        """Install a /32 on *router_name* toward *target_ip* via the port
        facing *next_node* (gateway when the next node is a router)."""
        kernel = self.routers[router_name]
        seg_name = self._shared_segment(router_name, next_node)
        port_name = None
        for pname, port in kernel.ports.items():
            if port.segment is self.segments[seg_name]:
                port_name = pname
                break
        if port_name is None:
            raise ValueError(f"{router_name} has no port on {seg_name}")
        gateway = None
        if next_node in self.routers:
            gateway = self._attachments[next_node][seg_name]
        kernel.add_route(target_ip, 32, port_name, gateway=gateway)

    def provision(self, src_name: str, dst_name: str,
                  remote_port: int = 7000,
                  local_port: Optional[int] = None,
                  inq_len: int = 32,
                  pmtud: bool = True,
                  probe_rounds: int = 12,
                  probe_wait_us: float = 50_000.0) -> ProvisionedPath:
        """Provision a working end-to-end transport path src -> dst."""
        src = self.hosts[src_name]
        dst = self.hosts[dst_name]
        chain = self.hop_chain(src_name, dst_name)
        dst_ip = dst.ip.addr
        src_ip = src.ip.addr

        # Routes: every router on the chain learns /32s toward both ends
        # (the reverse route also carries ICMP errors and echo replies).
        for i, node in enumerate(chain):
            if node in self.routers:
                self._install_route(node, dst_ip, chain[i + 1])
                self._install_route(node, src_ip, chain[i - 1])

        # Default gateways on the end stations, when routers sit between.
        if len(chain) > 2:
            first_seg = self._shared_segment(src_name, chain[1])
            last_seg = self._shared_segment(chain[-2], dst_name)
            src.set_gateway(self._attachments[chain[1]][first_seg])
            dst.set_gateway(self._attachments[chain[-2]][last_seg])

        # Neighbour tables: hosts and router ports may have attached in
        # any order, so re-learn everything on the chain now.
        src.refresh_arp()
        dst.refresh_arp()
        for node in chain:
            if node in self.routers:
                kernel = self.routers[node]
                for port in kernel.ports.values():
                    kernel.fwd.learn_arp(port.name, port.segment)

        # Transport: sink first so arriving datagrams always classify.
        sport = src.udp.allocate_port(local_port)
        sink_path = dst.open(str(src_ip), sport, local_port=remote_port,
                             inq_len=inq_len)
        path = src.open(str(dst_ip), remote_port, local_port=sport,
                        inq_len=inq_len)

        pmtu = None
        if pmtud:
            src.enable_pmtud()
            pmtu = self.probe_path_mtu(src_name, dst_name,
                                       rounds=probe_rounds,
                                       wait_us=probe_wait_us)
        return ProvisionedPath(src, dst, chain, path, sink_path,
                               sport, remote_port, pmtu)

    # -- active path-MTU discovery ----------------------------------------

    def probe_path_mtu(self, src_name: str, dst_name: str,
                       rounds: int = 12,
                       wait_us: float = 50_000.0) -> Optional[int]:
        """Run the DF-probe loop from *src* toward *dst*.

        Each round sends one Don't-Fragment echo sized to the current
        estimate.  A Fragmentation Needed error from a constricting hop
        shrinks the estimate (via the host's ICMP router); an echo reply
        means the probe fit end-to-end and the estimate has converged.
        Returns the converged path MTU (IP packet size), or ``None`` if
        no probe was ever answered within the round budget.
        """
        src = self.hosts[src_name]
        dst = self.hosts[dst_name]
        chain = self.hop_chain(src_name, dst_name)
        dst_ip = dst.ip.addr
        next_hop_mac = self._next_hop_mac(chain)
        ident = next(_probe_idents) & 0xFFFF
        for seq in range(rounds):
            estimate = src.ip.path_mtu(dst_ip)
            payload_len = estimate - IpHeader.SIZE - IcmpHeader.SIZE
            if payload_len < 0:
                return None
            frame = build_icmp_echo(
                src.device.mac, next_hop_mac, src.ip.addr, dst_ip,
                ident, seq, payload=b"\x00" * payload_len, df=True)
            # Inject at the adapter: the probe is control-plane traffic,
            # not a path's — the reply still rides the echo path.
            src.device.send(frame)
            self.world.run_for(wait_us)
            if (ident, seq) in src.icmp.replies_seen:
                return estimate
            if src.ip.path_mtu(dst_ip) < estimate:
                continue  # shrunk by Fragmentation Needed: retry smaller
            # No reply and no shrink: probe or reply lost; retry as-is.
        return None

    def _next_hop_mac(self, chain: List[str]):
        """MAC of the first hop on *chain* as seen from the source."""
        src_name, next_node = chain[0], chain[1]
        seg_name = self._shared_segment(src_name, next_node)
        if next_node in self.routers:
            kernel = self.routers[next_node]
            for port in kernel.ports.values():
                if port.segment is self.segments[seg_name]:
                    return port.device.mac
        elif next_node in self.hosts:
            return self.hosts[next_node].device.mac
        raise ValueError(f"cannot resolve first hop {next_node}")

    def __repr__(self) -> str:
        return (f"<Topology segments={len(self.segments)} "
                f"hosts={len(self.hosts)} routers={len(self.routers)}>")
