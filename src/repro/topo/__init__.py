"""The discovery control plane: probe the simulated network, build a
device/link inventory, and declaratively provision end-to-end paths.

``repro.topo`` is the scout-client idiom on top of the forwarding tier:
a :class:`Topology` owns the sim world's segments, end hosts
(:class:`HostNode`) and router appliances
(:class:`~repro.kernel.router.RouterKernel`); :meth:`Topology.discover`
walks the wires into an :class:`Inventory`; and
:meth:`Topology.provision` computes the hop chain between two hosts,
installs the forward and reverse routes plus gateways, optionally runs
the active path-MTU probe, and hands back a ready-to-send
:class:`ProvisionedPath`.
"""

from .controller import ProvisionedPath, Topology
from .host import HostNode
from .inventory import DeviceRecord, Inventory, LinkRecord

__all__ = [
    "Topology",
    "ProvisionedPath",
    "HostNode",
    "Inventory",
    "DeviceRecord",
    "LinkRecord",
]
