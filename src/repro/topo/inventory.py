"""The discovered device/link inventory.

:meth:`Topology.discover` walks every registered segment's endpoints and
renders what it finds into plain records — the control plane's map of
the data plane, from which provisioning computes hop chains.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class DeviceRecord:
    """One attachment point: a NIC (host or router port) or host agent."""

    __slots__ = ("node", "kind", "mac", "ip", "segment", "mtu")

    def __init__(self, node: str, kind: str, mac: str, ip: Optional[str],
                 segment: str, mtu: Optional[int]):
        self.node = node      # owning node name ("sender", "r1", ...)
        self.kind = kind      # "host" | "router" | "agent" | "device"
        self.mac = mac
        self.ip = ip
        self.segment = segment
        self.mtu = mtu

    def __repr__(self) -> str:
        return (f"DeviceRecord({self.node} {self.kind} {self.ip} "
                f"on {self.segment} mtu={self.mtu})")


class LinkRecord:
    """One wire: a segment plus its physical properties."""

    __slots__ = ("name", "mtu", "bandwidth_mbps", "latency_us",
                 "attached")

    def __init__(self, name: str, mtu: int, bandwidth_mbps: float,
                 latency_us: float, attached: List[str]):
        self.name = name
        self.mtu = mtu
        self.bandwidth_mbps = bandwidth_mbps
        self.latency_us = latency_us
        self.attached = attached  # node names on this wire

    def __repr__(self) -> str:
        return (f"LinkRecord({self.name} mtu={self.mtu} "
                f"{self.bandwidth_mbps}Mbps nodes={self.attached})")


class Inventory:
    """The control plane's picture of the network."""

    def __init__(self, devices: List[DeviceRecord],
                 links: List[LinkRecord]):
        self.devices = devices
        self.links = links

    def link(self, name: str) -> LinkRecord:
        for link in self.links:
            if link.name == name:
                return link
        raise KeyError(name)

    def nodes_on(self, segment: str) -> List[str]:
        return list(self.link(segment).attached)

    def segments_of(self, node: str) -> List[str]:
        return [d.segment for d in self.devices if d.node == node]

    def adjacency(self) -> Dict[str, List[str]]:
        """node -> neighbouring nodes (sharing at least one wire)."""
        result: Dict[str, List[str]] = {}
        for link in self.links:
            for node in link.attached:
                for other in link.attached:
                    if other != node and \
                            other not in result.setdefault(node, []):
                        result[node].append(other)
        return result

    def min_mtu(self, nodes: List[str]) -> int:
        """Smallest link MTU along a node chain (the PMTUD ground truth
        the differential tests compare the learned estimate against)."""
        mtus = []
        for a, b in zip(nodes, nodes[1:]):
            for link in self.links:
                if a in link.attached and b in link.attached:
                    mtus.append(link.mtu)
                    break
        if not mtus:
            raise ValueError(f"no wire chain through {nodes}")
        return min(mtus)

    def render(self) -> str:
        lines = ["links:"]
        for link in self.links:
            lines.append(f"  {link.name}: mtu={link.mtu} "
                         f"bw={link.bandwidth_mbps}Mbps "
                         f"lat={link.latency_us}us "
                         f"nodes={','.join(link.attached)}")
        lines.append("devices:")
        for dev in self.devices:
            lines.append(f"  {dev.node} ({dev.kind}) ip={dev.ip} "
                         f"mac={dev.mac} on {dev.segment}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"<Inventory devices={len(self.devices)} "
                f"links={len(self.links)}>")
