"""An end host in a multi-hop topology.

:class:`HostNode` is a compact ScoutKernel-style end station: the
TEST/UDP/IP/ETH graph of Figure 7 plus ARP and ICMP, a NIC on one
segment, interrupt-time classification depositing onto per-path input
queues, and per-path service threads under the world's scheduler.  It
adds the two pieces multi-hop forwarding needs that the single-segment
kernels never did: a configurable default **gateway** (off-net traffic
rides the link layer toward the router instead of truncating at IP) and
**PMTUD** (DF on sends, ICMP Fragmentation Needed feedback shrinking the
per-destination path-MTU estimate).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .. import params
from ..core.attributes import PA_INQ_LEN, PA_NET_PARTICIPANTS, Attrs
from ..core.classify import ClassifierStats, classify
from ..core.graph import RouterGraph
from ..core.message import Msg
from ..core.path import DELETED, Path
from ..core.path_create import path_create
from ..core.stage import BWD, FWD
from ..net.addresses import EthAddr, IpAddr
from ..net.arp import ArpRouter
from ..net.common import PA_LOCAL_PORT, charge, take_cost
from ..net.eth import EthRouter
from ..net.headers import UdpHeader
from ..net.icmp import IcmpRouter
from ..net.ip import PA_IP_CATCHALL, IpRouter
from ..net.segment import EtherSegment, NetDevice
from ..net.testrouter import TestRouter
from ..net.udp import UdpRouter
from ..sim.threads import Compute, Dequeue, YIELD
from ..sim.world import POLICY_RR, SimWorld


class HostNode:
    """A booted end host attached to one segment of a sim world."""

    def __init__(self, world: SimWorld, segment: EtherSegment,
                 name: str, ip, mac: Optional[str] = None,
                 mtu: int = params.ETH_MTU, prefix_len: int = 24,
                 service_priority: int = 1):
        self.world = world
        self.segment = segment
        self.name = name
        self.prefix_len = prefix_len
        self.service_priority = service_priority
        mac = mac or _host_mac()

        self.graph = RouterGraph()
        self.eth: EthRouter = self.graph.add(
            EthRouter("ETH", mac=mac, mtu=mtu))
        self.arp: ArpRouter = self.graph.add(ArpRouter("ARP"))
        self.ip: IpRouter = self.graph.add(
            IpRouter("IP", addr=ip, prefix_len=prefix_len))
        self.udp: UdpRouter = self.graph.add(UdpRouter("UDP"))
        self.icmp: IcmpRouter = self.graph.add(IcmpRouter("ICMP"))
        self.test: TestRouter = self.graph.add(TestRouter("TEST"))
        self.graph.connect("IP.down", "ETH.up")
        self.graph.connect("IP.res", "ARP.resolver")
        self.graph.connect("ARP.down", "ETH.up")
        self.graph.connect("UDP.down", "IP.up")
        self.graph.connect("ICMP.down", "IP.up")
        self.graph.connect("TEST.down", "UDP.up")

        self.device = NetDevice(EthAddr(mac), world.cpu,
                                name=f"{name}.eth0")
        # Advertise the host's IP so routers' learn_arp finds it.
        self.device.ip = IpAddr(ip)
        segment.attach(self.device)
        self.eth.attach_device(self.device)
        self.arp.learn_from_segment(segment)
        self.graph.boot()
        self.ip.use_engine(world.engine)
        self.arp.use_engine(world.engine)

        self.classifier_stats = ClassifierStats()
        self.unclassified_drops = 0
        self.inq_overflow_drops = 0
        self.paths: List[Path] = []
        self.device.rx_handler = self._rx

        # Boot-time service paths: ICMP echo + fragment catch-all.
        self.icmp_path = self._make_service_path(
            self.icmp, Attrs(), "icmp")
        self.icmp.echo_path = self.icmp_path
        self.frag_path = self._make_service_path(
            self.ip, Attrs({PA_IP_CATCHALL: True}), "frag")
        self.ip.frag_path = self.frag_path
        self.ip.reclassify_hook = self._reclassify

    # -- control-plane knobs ----------------------------------------------

    def set_gateway(self, gateway_ip) -> None:
        self.ip.set_gateway(gateway_ip)

    def enable_pmtud(self, enabled: bool = True) -> None:
        self.ip.enable_pmtud(enabled)

    def refresh_arp(self) -> None:
        """Re-learn neighbours — endpoints attached after our boot
        (other hosts, router ports) become resolvable."""
        self.arp.learn_from_segment(self.segment)

    # -- interrupt-time receive -------------------------------------------

    def _rx(self, frame: bytes) -> None:
        msg = Msg(frame, meta={"rx_time": self.world.now})
        before = self.classifier_stats.refinements
        path = classify(self.eth, msg, stats=self.classifier_stats)
        hops = self.classifier_stats.refinements - before + 1
        self.world.cpu.extend_interrupt(hops * params.CLASSIFY_PER_HOP_US)
        if path is None:
            self.unclassified_drops += 1
            self.world.cpu.extend_interrupt(params.EARLY_DROP_US)
            return
        if not path.input_queue(BWD).try_enqueue(msg):
            self.inq_overflow_drops += 1
            path.note_drop(msg, "path input queue full", "inq_overflow")
            self.world.cpu.extend_interrupt(params.EARLY_DROP_US)
            return
        path.stats.charge_memory(msg.footprint())

    def _reclassify(self, msg: Msg, header) -> None:
        take_cost(msg)
        msg.push(header.pack())
        before = self.classifier_stats.refinements
        path = classify(self.ip, msg, stats=self.classifier_stats)
        hops = self.classifier_stats.refinements - before + 1
        charge(msg, hops * params.CLASSIFY_PER_HOP_US)
        if path is None or path is self.frag_path:
            self.unclassified_drops += 1
            return
        msg.meta["entry_router"] = "IP"
        if not path.input_queue(BWD).try_enqueue(msg):
            self.inq_overflow_drops += 1
            path.note_drop(msg, "path input queue full", "inq_overflow")

    # -- path threads ------------------------------------------------------

    def _service_thread_body(self, path: Path):
        inq = path.input_queue(BWD)
        while path.state != DELETED:
            msg = yield Dequeue(inq)
            entry = msg.meta.pop("entry_router", None)
            if entry is not None:
                path.inject_at(path.stage_of(entry), msg, BWD)
            else:
                path.deliver(msg, BWD)
            cost = take_cost(msg)
            if cost > 0:
                yield Compute(cost)
            path.stats.release_memory(msg.footprint())
            yield YIELD

    def _make_service_path(self, router, attrs: Attrs, label: str) -> Path:
        path = path_create(router, attrs)
        self.world.spawn(self._service_thread_body(path),
                         name=f"{self.name}-{label}-path{path.pid}",
                         policy=POLICY_RR, priority=self.service_priority,
                         path=path)
        self.paths.append(path)
        return path

    # -- transport ---------------------------------------------------------

    def open(self, remote_ip, remote_port: int,
             local_port: Optional[int] = None,
             inq_len: int = 32, **extra_attrs) -> Path:
        """Create a TEST->UDP->IP->ETH path toward a remote endpoint."""
        attrs = Attrs({
            PA_NET_PARTICIPANTS: (str(remote_ip), remote_port),
            PA_LOCAL_PORT: self.udp.allocate_port(local_port),
            PA_INQ_LEN: inq_len,
        }, **extra_attrs)
        return self._make_service_path(self.test, attrs, "test")

    def send(self, path: Path, payload: bytes) -> None:
        path.deliver(Msg(payload), FWD)

    def mss(self, remote_ip) -> int:
        """Largest UDP payload that rides one unfragmented IP packet to
        *remote_ip* under the current path-MTU estimate."""
        return self.ip.payload_capacity(IpAddr(remote_ip)) - UdpHeader.SIZE

    def send_stream(self, path: Path, data: bytes,
                    mss: Optional[int] = None) -> int:
        """Chop *data* into datagrams and send them down *path*.

        With PMTUD the default chunk tracks the learned path MTU, so a
        converged sender emits zero fragments; without it the IP stage
        fragments at the first-hop MTU as before.  Returns the datagram
        count.
        """
        if mss is None:
            remote_ip = path.attrs[PA_NET_PARTICIPANTS][0]
            mss = self.mss(remote_ip)
        if mss <= 0:
            raise ValueError(f"{self.name}: non-positive MSS {mss}")
        count = 0
        for start in range(0, len(data), mss):
            self.send(path, data[start:start + mss])
            count += 1
        return count

    # -- receive-side accessors -------------------------------------------

    def received_payloads(self) -> List[bytes]:
        return [msg.to_bytes() for msg in self.test.received]

    @property
    def bytes_received(self) -> int:
        return self.test.bytes_received

    def drop_ledger(self) -> Dict[str, int]:
        """Aggregate drop accounting across this host's paths."""
        ledger: Dict[str, int] = {}
        for path in self.paths:
            for category, count in path.stats.drop_reasons.items():
                ledger[category] = ledger.get(category, 0) + count
        if self.unclassified_drops:
            ledger["unclassified"] = self.unclassified_drops
        return ledger

    def __repr__(self) -> str:
        return f"<HostNode {self.name} {self.ip.addr}>"


_mac_serial = 0


def _host_mac() -> str:
    global _mac_serial
    _mac_serial += 1
    return f"02:00:0a:00:{(_mac_serial >> 8) & 0xFF:02x}:{_mac_serial & 0xFF:02x}"
