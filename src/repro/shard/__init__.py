"""Sharded kernel fabric: flow-hash dispatch across N Scout kernels.

Scout's path architecture makes per-flow state explicit — which is
exactly what makes kernels shardable: if every frame of a flow reaches
the same kernel, that kernel's flow cache, admission state, and
specialized paths need no cross-kernel coordination at all.  This
package scales the single-kernel reproduction across cores on that
observation (DESIGN.md §17):

* :mod:`~repro.shard.dispatch` — flow-hash dispatcher peeking the same
  header bytes :func:`repro.core.flowcache.flow_key` keys on;
* :mod:`~repro.shard.codec` — compact wire codec for frame runs and
  fates on the multiprocessing rings;
* :mod:`~repro.shard.worker` — one whole ``ScoutKernel`` per shard,
  answering per-serial fates, with a shard-local shedder/watchdog
  control plane;
* :mod:`~repro.shard.books` — merged metrics + cross-shard drop-ledger
  reconciliation, exact to the serial;
* :mod:`~repro.shard.fabric` — :class:`ShardedKernel`, composing it
  all in deterministic ``threads`` mode (tier-1) and parallel
  ``process`` mode (the scaling benchmark), with dead-worker failover
  and a flow ``rebalance()`` hook.
"""

from .books import FabricBooks, ShardBooks, reconcile
from .codec import (
    CodecError,
    decode_batch,
    decode_fates,
    encode_batch,
    encode_fates,
)
from .dispatch import FlowDispatcher, shard_of
from .fabric import ShardedKernel
from .worker import SHARD_FAILOVER, ShardSpec, ShardWorker, worker_main

__all__ = [
    "ShardedKernel",
    "FlowDispatcher", "shard_of",
    "ShardSpec", "ShardWorker", "worker_main", "SHARD_FAILOVER",
    "ShardBooks", "FabricBooks", "reconcile",
    "CodecError", "encode_batch", "decode_batch",
    "encode_fates", "decode_fates",
]
