"""Flow-hash dispatch at the RX boundary of the shard fabric.

The dispatcher is the fabric's classifier-before-the-classifier: it
peeks exactly the header bytes :func:`repro.core.flowcache.flow_key`
keys on (ETH dst + IP proto + addresses + UDP ports) and maps each
frame to a shard, so every frame of a flow always lands on the same
:class:`~repro.kernel.ScoutKernel` instance and that kernel's flow
cache, admission state, and specialized paths stay private to it.

Placement is ``crc32(flow_key) % shards`` — a *stable* hash (Python's
builtin ``hash`` is salted per process, which would scatter the same
flow differently across fabric restarts and across the dispatcher and
any debugging tool).  Three things can override the hash:

* **pins** — an explicit flow→shard binding, installed by
  ``rebalance()`` or by failover.  Pins always win.
* **dead shards** — when a worker dies, its hash slots are re-aimed at
  the live set (``live[crc32 % len(live)]``) and each rerouted flow is
  pinned to its new home, so the mapping stays stable even as further
  shards die.
* **non-flow traffic** (ARP, ICMP, fragments — anything
  :func:`flow_key_frame` declines) — goes to the lowest-numbered live
  shard, keeping it deterministic without inventing a second hash.
"""

from __future__ import annotations

import zlib
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.flowcache import flow_key_frame

__all__ = ["shard_of", "FlowDispatcher"]


def shard_of(key: bytes, shards: int) -> int:
    """Stable home shard for a flow key: ``crc32(key) % shards``."""
    return zlib.crc32(key) % shards


class FlowDispatcher:
    """Split frame runs across shards by flow hash, honouring pins."""

    def __init__(self, shards: int):
        if shards < 1:
            raise ValueError("need at least one shard")
        self.shards = shards
        #: Explicit flow→shard overrides (failover and rebalance).
        self.pins: Dict[bytes, int] = {}
        #: Shards whose workers are known dead.
        self.dead: Set[int] = set()
        #: Every flow key each shard has ever been handed — the failover
        #: worklist: when a shard dies these are the flows to re-pin.
        self.flows_on_shard: Dict[int, Set[bytes]] = {
            shard: set() for shard in range(shards)}
        # accounting
        self.dispatched: Dict[int, int] = {
            shard: 0 for shard in range(shards)}
        self.non_flow_frames = 0
        self.failover_repins = 0

    # -- placement -------------------------------------------------------------

    def live_shards(self) -> List[int]:
        return [s for s in range(self.shards) if s not in self.dead]

    def shard_for_key(self, key: bytes) -> int:
        """Resolve one flow key to a live shard (pin > hash > failover)."""
        pinned = self.pins.get(key)
        if pinned is not None and pinned not in self.dead:
            return pinned
        home = shard_of(key, self.shards)
        if home not in self.dead and pinned is None:
            return home
        live = self.live_shards()
        if not live:
            raise RuntimeError("all shards are dead")
        target = live[zlib.crc32(key) % len(live)]
        # Pin the detour so the flow stays put even if the live set
        # shrinks again (re-hashing over a different-sized live list
        # would otherwise migrate flows whose shard never died).
        self.pins[key] = target
        self.failover_repins += 1
        return target

    def dispatch(self, frames: Sequence[bytes],
                 metas: Optional[Sequence[Optional[dict]]] = None,
                 ) -> Dict[int, Tuple[List[bytes], List[Optional[dict]]]]:
        """Partition a frame run into per-shard runs, order-preserving.

        Returns ``{shard: (frames, metas)}`` covering only shards that
        received at least one frame.  Relative order within a shard's
        run equals arrival order, so per-flow FIFO survives dispatch.
        """
        if metas is not None and len(metas) != len(frames):
            raise ValueError(f"{len(frames)} frames but {len(metas)} metas")
        out: Dict[int, Tuple[List[bytes], List[Optional[dict]]]] = {}
        for index, frame in enumerate(frames):
            key = flow_key_frame(bytes(frame))
            if key is None:
                live = self.live_shards()
                if not live:
                    raise RuntimeError("all shards are dead")
                target = live[0]
                self.non_flow_frames += 1
            else:
                target = self.shard_for_key(key)
                self.flows_on_shard[target].add(key)
            run = out.get(target)
            if run is None:
                run = ([], [])
                out[target] = run
            run[0].append(frame)
            run[1].append(metas[index] if metas is not None else None)
            self.dispatched[target] += 1
        return out

    # -- control plane ---------------------------------------------------------

    def mark_dead(self, shard: int) -> Set[bytes]:
        """Record a dead worker; returns the flows that must re-home.

        The returned keys are *not* re-pinned here — the fabric re-pins
        them via :meth:`shard_for_key` as their next frames arrive (or
        eagerly, for the chaos test's "every live flow re-pinned"
        check), after it has ledgered the shard's outstanding serials.
        """
        if shard >= self.shards:
            raise ValueError(f"no such shard {shard}")
        self.dead.add(shard)
        return set(self.flows_on_shard[shard])

    def repin(self, key: bytes, shard: int) -> None:
        """Explicitly bind a flow to a shard (the rebalance hook's move)."""
        if shard in self.dead:
            raise ValueError(f"cannot pin flow to dead shard {shard}")
        self.pins[key] = shard
        self.flows_on_shard[shard].add(key)

    def __repr__(self) -> str:
        return (f"<FlowDispatcher shards={self.shards} "
                f"dead={sorted(self.dead)} pins={len(self.pins)}>")
