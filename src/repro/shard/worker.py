"""One shard of the fabric: a whole Scout kernel behind a frame ring.

A shard is not a thread inside a shared kernel — it is a complete
:class:`~repro.kernel.ScoutKernel` (own :class:`~repro.sim.SimWorld`,
own scheduler, own flow cache, own admission state) that receives whole
frame runs from the dispatcher and answers with per-serial *fates*:
``delivered`` with the payload bytes, or the exact drop category its
admission/queues assigned.  Because every shard runs its own virtual
clock, shards are deterministic in isolation, which is what makes the
in-process ``threads`` mode a tier-1 differential oracle for the
multiprocessing mode.

:class:`ShardWorker` is the in-process form; :func:`worker_main` wraps
one in a ring-served loop for ``multiprocessing`` workers, speaking the
:mod:`~repro.shard.codec` wire format in both directions.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..admission.control import BackpressureShedder
from ..core.stage import BWD
from ..faults.adversary import DELIVERED
from ..faults.watchdog import PathWatchdog
from ..kernel.scout import ScoutKernel
from ..net.addresses import EthAddr, IpAddr
from ..net.segment import EtherSegment
from ..observe.metrics import MetricsRegistry
from ..sim.world import SimWorld
from .books import ShardBooks
from .codec import decode_batch, encode_fates

__all__ = ["ShardSpec", "ShardWorker", "worker_main", "SHARD_FAILOVER"]

#: Ledger category for serials orphaned by a dead worker.
SHARD_FAILOVER = "shard_failover"

#: Fate tuple: ``(serial, category, payload-or-None)``.
Fate = Tuple[int, str, Optional[bytes]]


class ShardSpec:
    """Picklable recipe for building one shard's kernel.

    Every shard replicates the *same* local addresses: the fabric is one
    logical Scout machine, so a frame must validate (ETH dst, IP dst,
    UDP port) identically on whichever shard the dispatcher picks —
    that address-replication is what makes 1-shard and N-shard runs
    byte-comparable per flow.
    """

    __slots__ = ("shard_id", "seed", "ports", "batch", "inq_len",
                 "outq_len", "specialize", "local_mac", "local_ip",
                 "remote_mac", "remote_ip", "control_plane")

    def __init__(self, shard_id: int, seed: int = 0,
                 ports: Sequence[int] = (6100,),
                 batch: int = 8, inq_len: int = 64, outq_len: int = 64,
                 specialize: Optional[bool] = None,
                 local_mac: str = "02:00:00:00:00:01",
                 local_ip: str = "10.0.0.1",
                 remote_mac: str = "02:00:00:00:00:02",
                 remote_ip: str = "10.0.0.2",
                 control_plane: bool = False):
        self.shard_id = shard_id
        self.seed = seed
        self.ports = tuple(ports)
        self.batch = batch
        self.inq_len = inq_len
        self.outq_len = outq_len
        self.specialize = specialize
        self.local_mac = local_mac
        self.local_ip = local_ip
        self.remote_mac = remote_mac
        self.remote_ip = remote_ip
        self.control_plane = control_plane

    def __getstate__(self):
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state):
        for slot, value in state.items():
            setattr(self, slot, value)

    def __repr__(self) -> str:
        return (f"<ShardSpec shard={self.shard_id} ports={self.ports} "
                f"batch={self.batch}>")


class ShardWorker:
    """A full Scout kernel serving dispatched frame runs for one shard."""

    #: Bounded-slice width used when the control plane's periodic timers
    #: keep the engine from ever going idle.
    RUN_SLICE_US = 50_000.0

    def __init__(self, spec: ShardSpec):
        self.spec = spec
        self.shard_id = spec.shard_id
        self.world = SimWorld(seed=spec.seed)
        self.segment = EtherSegment(self.world.engine, rng=self.world.rng)
        self.kernel = ScoutKernel(
            self.world, self.segment,
            local_mac=spec.local_mac, local_ip=spec.local_ip,
            udp_sink=True, display=False, specialize=spec.specialize)
        self.kernel.arp.add_entry(IpAddr(spec.remote_ip),
                                  EthAddr(spec.remote_mac))
        self.metrics = MetricsRegistry()
        self._m_frames = self.metrics.counter(
            "shard_frames_in", shard=self.shard_id)
        self._m_delivered = self.metrics.counter(
            "shard_delivered", shard=self.shard_id)
        self._m_dropped = self.metrics.counter(
            "shard_dropped", shard=self.shard_id)
        self._m_batches = self.metrics.histogram(
            "shard_batch_frames", bounds=(1, 8, 32, 128, 512),
            shard=self.shard_id)
        self._m_inq_depth = self.metrics.gauge(
            "shard_inq_high_watermark", shard=self.shard_id)
        self._drops: List[Tuple[Optional[int], str]] = []
        self.kernel.drop_hook = self._on_drop
        self._delivered_cursor = 0
        for port in spec.ports:
            self.kernel.start_udp_sink(
                port, remote=(spec.remote_ip, 7000), batch=spec.batch,
                inq_len=spec.inq_len, outq_len=spec.outq_len,
                specialize=spec.specialize)
        # -- shard-local control plane ------------------------------------
        # The shedder observes the sink input queues (its ``shedding``
        # flag is the watchdog's overload discriminator); it does not
        # gate arrivals, so the shard's delivery behaviour stays
        # bit-identical to an unsharded kernel's.  Watchdogs repair a
        # wedged sink path by rebuilding it on the same port.
        self.shedder = BackpressureShedder()
        self.watchdogs: Dict[int, PathWatchdog] = {}
        for port, path in self.kernel.sink_paths.items():
            self.shedder.watch(path.input_queue(BWD))
        if spec.control_plane:
            for port in spec.ports:
                self.watchdogs[port] = PathWatchdog(
                    self.world.engine, self.kernel.sink_paths[port],
                    rebuild=self._make_rebuild(port),
                    flow_cache=self.kernel.flow_cache,
                    overload_check=lambda: self.shedder.shedding,
                ).start()

    # -- kernel hooks ----------------------------------------------------------

    def _on_drop(self, msg, category: str) -> None:
        self._drops.append((msg.meta.get("shard_serial"), category))

    def _make_rebuild(self, port: int):
        def rebuild():
            # The watchdog deleted nothing yet: retire the wedged path's
            # port binding, then recreate the sink so the replacement
            # owns the port.  The watchdog adopts the returned path.
            if port in self.kernel.sink_paths:
                self.kernel.stop_udp_sink(port)
            path = self.kernel.start_udp_sink(
                port, remote=(self.spec.remote_ip, 7000),
                batch=self.spec.batch, inq_len=self.spec.inq_len,
                outq_len=self.spec.outq_len,
                specialize=self.spec.specialize)
            self.shedder.watch(path.input_queue(BWD))
            return path
        return rebuild

    # -- the ring's request side ----------------------------------------------

    def feed(self, frames: Sequence[bytes],
             metas: Optional[Sequence[Optional[dict]]] = None) -> List[Fate]:
        """Ingest one dispatched run, run to quiescence, return fates.

        Every frame carrying a ``shard_serial`` is answered exactly once:
        either ``(serial, "delivered", payload)`` from the TEST sink or
        ``(serial, category, None)`` from the kernel's drop hook.  The
        shedder samples occupancy once per run (admission-observational,
        never gating).
        """
        self._m_frames.inc(len(frames))
        self._m_batches.observe(len(frames))
        self.kernel.rx_burst(list(frames), metas=list(metas) if metas else None)
        self.shedder.admit()
        self._run_to_quiescence()
        depth = max((len(p.input_queue(BWD))
                     for p in self.kernel.sink_paths.values()), default=0)
        self._m_inq_depth.set(depth)
        return self._collect_fates()

    def _run_to_quiescence(self) -> None:
        if not self.watchdogs:
            self.world.run_until_idle()
            return
        # Watchdog heartbeats re-arm forever, so the engine never goes
        # idle; run bounded slices until the sinks drain instead.
        for _ in range(64):
            self.world.run_for(self.RUN_SLICE_US)
            if all(len(path.input_queue(BWD)) == 0
                   for path in self.kernel.sink_paths.values()):
                return

    def _collect_fates(self) -> List[Fate]:
        fates: List[Fate] = []
        received = self.kernel.test.received
        for msg in received[self._delivered_cursor:]:
            serial = msg.meta.get("shard_serial")
            if serial is not None:
                fates.append((serial, DELIVERED, msg.to_bytes()))
                self._m_delivered.inc()
        self._delivered_cursor = len(received)
        for serial, category in self._drops:
            if serial is not None:
                fates.append((serial, category, None))
                self._m_dropped.inc()
        self._drops.clear()
        return fates

    # -- control-plane verbs ---------------------------------------------------

    def invalidate_flow(self, key: bytes) -> bool:
        """Drop one flow's cached classification (rebalance drain step)."""
        return self.kernel.flow_cache.invalidate_key(key)

    def control_state(self) -> Dict[str, Any]:
        return {
            "shedding": self.shedder.shedding,
            "shed_transitions": self.shedder.transitions,
            "stalls_detected": sum(w.stalls_detected
                                   for w in self.watchdogs.values()),
            "rebuilds": sum(w.rebuilds for w in self.watchdogs.values()),
            "overload_deferrals": sum(w.overload_deferrals
                                      for w in self.watchdogs.values()),
        }

    # -- closing the books -----------------------------------------------------

    def books(self) -> ShardBooks:
        kernel = self.kernel
        drops: Dict[str, int] = {}
        for category, counter in (
                ("early_discard", kernel.early_drops),
                ("inq_overflow", kernel.inq_overflow_drops),
                ("unclassified", kernel.classifier_stats.dropped)):
            if counter:
                drops[category] = counter
        account = {
            "delivered": len(kernel.test.received),
            "delivered_bytes": kernel.test.bytes_received,
            "drops": drops,
        }
        return ShardBooks(self.shard_id, self.metrics, account,
                          kernel.stats(), control=self.control_state())

    def __repr__(self) -> str:
        return (f"<ShardWorker shard={self.shard_id} "
                f"t={self.world.now:.0f}us>")


def worker_main(spec: ShardSpec, rx_ring, tx_ring) -> None:
    """Process entry point: serve one shard over a pair of rings.

    Requests: ``("batch", batch_id, blob)`` with a codec-encoded frame
    run → answered ``("fates", shard_id, batch_id, blob)``;
    ``("invalidate", key)`` → ``("invalidated", shard_id, bool)``;
    ``("stop",)`` → ``("books", shard_id, ShardBooks)`` then exit.
    Any exception is reported as ``("error", shard_id, repr)`` before
    the worker dies, so the fabric can ledger the loss instead of
    hanging on a silent peer.
    """
    try:
        worker = ShardWorker(spec)
        while True:
            request = rx_ring.get()
            verb = request[0]
            if verb == "batch":
                _, batch_id, blob = request
                frames, metas = decode_batch(blob)
                fates = worker.feed(frames, metas)
                tx_ring.put(("fates", worker.shard_id, batch_id,
                             encode_fates(fates)))
            elif verb == "invalidate":
                hit = worker.invalidate_flow(request[1])
                tx_ring.put(("invalidated", worker.shard_id, hit))
            elif verb == "stop":
                tx_ring.put(("books", worker.shard_id, worker.books()))
                return
            else:
                raise ValueError(f"unknown ring verb {verb!r}")
    except (KeyboardInterrupt, SystemExit):
        raise
    except BaseException as exc:  # noqa: BLE001 - report, then die
        try:
            tx_ring.put(("error", spec.shard_id,
                         f"{type(exc).__name__}: {exc}"))
        except Exception:
            pass
        raise
