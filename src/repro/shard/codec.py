"""Compact wire codec for handing frame batches across shard rings.

The dispatcher keeps whole :class:`~repro.core.Msg` runs together when
it forwards them to a shard worker, but a multiprocessing ring cannot
carry live ``Msg`` objects without paying generic pickling for every
frame.  This codec flattens a batch — raw frame bytes plus an
allowlisted scalar ``meta`` dict per frame — into one contiguous byte
string, and the ack direction does the same for per-serial fates.  One
``put`` per batch, zero per-frame object graphs on the wire.

Only scalar meta values survive the crossing (``None``, ``bool``,
``int``, ``float``, ``str``, ``bytes``): the fabric-side metadata a
frame needs (``shard_serial``, ``flow``) is exactly that shape, and
refusing richer values here keeps the codec's framing trivially
auditable.  Anything else raises :class:`CodecError` at encode time —
at the sender, where the stack trace names the culprit — rather than
producing a blob the far side cannot parse.
"""

from __future__ import annotations

import struct
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "CodecError", "encode_batch", "decode_batch",
    "encode_fates", "decode_fates",
]


class CodecError(ValueError):
    """A value the shard ring codec refuses to carry, or a torn blob."""


#: Format/version magic; bump on any framing change so a stale worker
#: fails loudly instead of misparsing.
_MAGIC = b"SH1\n"

# value type tags
_T_NONE = 0
_T_FALSE = 1
_T_TRUE = 2
_T_INT = 3
_T_FLOAT = 4
_T_STR = 5
_T_BYTES = 6

_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")


def _encode_value(out: List[bytes], value: Any) -> None:
    if value is None:
        out.append(bytes([_T_NONE]))
    elif value is True:
        out.append(bytes([_T_TRUE]))
    elif value is False:
        out.append(bytes([_T_FALSE]))
    elif isinstance(value, int):
        out.append(bytes([_T_INT]))
        out.append(_I64.pack(value))
    elif isinstance(value, float):
        out.append(bytes([_T_FLOAT]))
        out.append(_F64.pack(value))
    elif isinstance(value, str):
        data = value.encode("utf-8")
        out.append(bytes([_T_STR]))
        out.append(_U32.pack(len(data)))
        out.append(data)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        data = bytes(value)
        out.append(bytes([_T_BYTES]))
        out.append(_U32.pack(len(data)))
        out.append(data)
    else:
        raise CodecError(
            f"shard ring meta values must be scalars, not "
            f"{type(value).__name__}: {value!r}")


class _Reader:
    """Cursor over an encoded blob; every read is bounds-checked."""

    __slots__ = ("blob", "pos")

    def __init__(self, blob: bytes):
        self.blob = blob
        self.pos = 0

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.blob):
            raise CodecError("torn shard ring blob (short read)")
        piece = self.blob[self.pos:end]
        self.pos = end
        return piece

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def value(self) -> Any:
        tag = self.take(1)[0]
        if tag == _T_NONE:
            return None
        if tag == _T_TRUE:
            return True
        if tag == _T_FALSE:
            return False
        if tag == _T_INT:
            return _I64.unpack(self.take(8))[0]
        if tag == _T_FLOAT:
            return _F64.unpack(self.take(8))[0]
        if tag == _T_STR:
            return self.take(self.u32()).decode("utf-8")
        if tag == _T_BYTES:
            return self.take(self.u32())
        raise CodecError(f"unknown shard ring value tag {tag}")


def _encode_meta(out: List[bytes], meta: Optional[Dict[str, Any]]) -> None:
    if not meta:
        out.append(_U32.pack(0))
        return
    out.append(_U32.pack(len(meta)))
    for key, value in meta.items():
        data = key.encode("utf-8")
        out.append(_U32.pack(len(data)))
        out.append(data)
        _encode_value(out, value)


def _decode_meta(reader: _Reader) -> Dict[str, Any]:
    meta: Dict[str, Any] = {}
    for _ in range(reader.u32()):
        key = reader.take(reader.u32()).decode("utf-8")
        meta[key] = reader.value()
    return meta


def encode_batch(frames: Sequence[bytes],
                 metas: Optional[Sequence[Optional[Dict[str, Any]]]] = None,
                 ) -> bytes:
    """Flatten a frame run (plus per-frame meta) into one blob."""
    if metas is not None and len(metas) != len(frames):
        raise CodecError(f"{len(frames)} frames but {len(metas)} metas")
    out: List[bytes] = [_MAGIC, _U32.pack(len(frames))]
    for index, frame in enumerate(frames):
        data = bytes(frame)
        out.append(_U32.pack(len(data)))
        out.append(data)
        _encode_meta(out, metas[index] if metas is not None else None)
    return b"".join(out)


def decode_batch(blob: bytes) -> Tuple[List[bytes], List[Dict[str, Any]]]:
    """Inverse of :func:`encode_batch`."""
    reader = _Reader(blob)
    if reader.take(4) != _MAGIC:
        raise CodecError("shard ring blob has wrong magic")
    frames: List[bytes] = []
    metas: List[Dict[str, Any]] = []
    for _ in range(reader.u32()):
        frames.append(reader.take(reader.u32()))
        metas.append(_decode_meta(reader))
    if reader.pos != len(blob):
        raise CodecError("trailing bytes after shard ring batch")
    return frames, metas


def encode_fates(fates: Sequence[Tuple[int, str, Optional[bytes]]]) -> bytes:
    """Flatten per-serial fates for the ack direction of the ring.

    Each fate is ``(serial, category, payload)`` where *payload* is the
    delivered byte stream (``None`` for drops) — the fabric needs it to
    keep per-flow delivery streams comparable across modes.
    """
    out: List[bytes] = [_MAGIC, _U32.pack(len(fates))]
    for serial, category, payload in fates:
        out.append(_I64.pack(serial))
        data = category.encode("utf-8")
        out.append(_U32.pack(len(data)))
        out.append(data)
        if payload is None:
            out.append(bytes([_T_NONE]))
        else:
            out.append(bytes([_T_BYTES]))
            out.append(_U32.pack(len(payload)))
            out.append(bytes(payload))
    return b"".join(out)


def decode_fates(blob: bytes) -> List[Tuple[int, str, Optional[bytes]]]:
    """Inverse of :func:`encode_fates`."""
    reader = _Reader(blob)
    if reader.take(4) != _MAGIC:
        raise CodecError("shard ring blob has wrong magic")
    fates: List[Tuple[int, str, Optional[bytes]]] = []
    for _ in range(reader.u32()):
        serial = _I64.unpack(reader.take(8))[0]
        category = reader.take(reader.u32()).decode("utf-8")
        tag = reader.take(1)[0]
        if tag == _T_NONE:
            payload: Optional[bytes] = None
        elif tag == _T_BYTES:
            payload = reader.take(reader.u32())
        else:
            raise CodecError(f"unexpected fate payload tag {tag}")
        fates.append((serial, category, payload))
    if reader.pos != len(blob):
        raise CodecError("trailing bytes after shard ring fates")
    return fates
