"""Merged books: fabric-level metrics, ledgers, and reconciliation.

Each shard runs a whole :class:`~repro.kernel.ScoutKernel` with its own
:class:`~repro.observe.MetricsRegistry` and its own view of what it
delivered and dropped.  The fabric's *books* are the merge of those
per-shard views — and the point of this module is that the merge is
checked, not trusted: :func:`reconcile` proves that the fabric-level
:class:`~repro.faults.DropLedger` (fed only by dispatch-side injections
and ack-side accountings) agrees serial-for-serial with what the shard
kernels themselves counted.  A frame lost between the dispatcher and a
worker shows up as a ledger leak; a frame counted by two shards shows
up as a double count or a sum mismatch.  Zero tolerance either way.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..faults.adversary import DELIVERED, DropLedger
from ..observe.metrics import MetricsRegistry

__all__ = ["ShardBooks", "FabricBooks", "reconcile"]


class ShardBooks:
    """One shard's closing statement, as its own kernel saw the run."""

    __slots__ = ("shard_id", "metrics", "account", "kernel_stats",
                 "control")

    def __init__(self, shard_id: int, metrics: MetricsRegistry,
                 account: Dict[str, Any],
                 kernel_stats: Dict[str, float],
                 control: Optional[Dict[str, Any]] = None):
        self.shard_id = shard_id
        #: The shard's private registry (counters labeled shard=<id>).
        self.metrics = metrics
        #: ``{"delivered": n, "delivered_bytes": n, "drops": {cat: n}}``
        #: summed from the shard's path stats and kernel drop counters —
        #: the :class:`~repro.core.PathStats`-side truth the fabric
        #: ledger must reconcile against exactly.
        self.account = account
        self.kernel_stats = kernel_stats
        #: Per-shard control-plane view (shedder / watchdog state).
        self.control = control or {}

    def __repr__(self) -> str:
        return (f"<ShardBooks shard={self.shard_id} "
                f"delivered={self.account.get('delivered', 0)}>")


class FabricBooks:
    """The merged, reconciled view across every shard."""

    def __init__(self, shards: Dict[int, ShardBooks],
                 ledgers: Dict[int, DropLedger]):
        self.shards = shards
        #: Fabric-owned per-shard ledgers (dispatch injects, acks close).
        self.ledgers = ledgers
        #: One registry folding every shard's series
        #: (``MetricsRegistry.merge`` — counters add, gauges keep
        #: fabric totals plus worst watermarks, histograms bucket-add).
        self.metrics = MetricsRegistry().merge(
            *(shards[sid].metrics for sid in sorted(shards)))
        #: One ledger with every serial namespaced ``(shard_id, serial)``.
        self.ledger = DropLedger.merge(ledgers)
        self.reconciliation = reconcile(self.ledger, ledgers, shards)

    @property
    def ok(self) -> bool:
        return bool(self.reconciliation["ok"])

    def governor_view(self) -> Dict[int, Dict[str, Any]]:
        """Fabric-level control-plane summary, one row per shard."""
        return {sid: dict(books.control)
                for sid, books in sorted(self.shards.items())}

    def __repr__(self) -> str:
        counts = self.ledger.counts()
        return (f"<FabricBooks shards={sorted(self.shards)} "
                f"delivered={counts.get(DELIVERED, 0)} "
                f"ok={self.ok}>")


def reconcile(merged: DropLedger, ledgers: Dict[int, DropLedger],
              shards: Dict[int, ShardBooks]) -> Dict[str, Any]:
    """Prove the merged ledger against the shards' own accounting.

    Checks, in order of how damning a failure would be:

    1. **no leaks** — every injected serial reached a terminal state;
    2. **no double counts** — no serial closed twice (a frame delivered
       by two shards, or delivered and also counted dropped);
    3. **conservation** — category counts sum to the injection count,
       and the merged totals equal the per-shard ledger sums exactly
       (the associativity the merge promises);
    4. **per-shard kernel sums** — for every shard that closed books,
       that shard's ledger slice matches what its own kernel counted:
       delivered equals the sink's receive count and each drop category
       equals the kernel-side counter.  This cross-check catches a
       *consistently wrong* ledger (a category misfiled on both sides
       of the ring would pass checks 1-3).  Dead shards cannot testify,
       so they are exempt from check 4 — but their ledgers still feed
       checks 1-3, and their ``shard_failover`` serials (fabric-side
       only; those frames never reached any kernel) are conserved.
    """
    counts = merged.counts()
    leaks = merged.leaks()
    per_shard_counts = {sid: ledger.counts()
                        for sid, ledger in ledgers.items()}
    summed: Dict[str, int] = {}
    for shard_counts in per_shard_counts.values():
        for category, n in shard_counts.items():
            summed[category] = summed.get(category, 0) + n
    conserved = (sum(counts.values()) == merged.injected
                 and counts == summed
                 and merged.injected == sum(ledger.injected
                                            for ledger in ledgers.values()))

    mismatches: List[str] = []
    for sid, books in sorted(shards.items()):
        ledger_counts = per_shard_counts.get(sid, {})
        delivered = ledger_counts.get(DELIVERED, 0)
        if delivered != books.account.get("delivered", 0):
            mismatches.append(
                f"shard {sid} delivered: ledger={delivered} "
                f"kernel={books.account.get('delivered', 0)}")
        kernel_drops = books.account.get("drops", {})
        categories = (set(ledger_counts) | set(kernel_drops)) - {
            DELIVERED, "shard_failover"}
        for category in sorted(categories):
            if ledger_counts.get(category, 0) != kernel_drops.get(category, 0):
                mismatches.append(
                    f"shard {sid} {category}: "
                    f"ledger={ledger_counts.get(category, 0)} "
                    f"kernel={kernel_drops.get(category, 0)}")

    return {
        "ok": (not leaks and not merged.double_counted and conserved
               and not mismatches),
        "injected": merged.injected,
        "counts": counts,
        "per_shard_counts": per_shard_counts,
        "leaks": leaks,
        "double_counted": list(merged.double_counted),
        "conserved": conserved,
        "mismatches": mismatches,
    }
