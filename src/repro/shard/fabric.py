"""The sharded kernel fabric: N Scout kernels behind one RX boundary.

:class:`ShardedKernel` composes the pieces of this package into one
logical machine: a :class:`~repro.shard.dispatch.FlowDispatcher` peeks
each arriving frame's flow key and hands whole runs to per-shard
workers; every flow-keyed frame is *injected* into that shard's
fabric-owned :class:`~repro.faults.DropLedger` at dispatch and *closed*
only by the worker's acked fate — delivered-with-payload or an exact
drop category — so the fabric's books are end-to-end exact even across
process boundaries.

Two modes share every line of dispatch/ledger/merge logic:

* ``mode="threads"`` (default): workers are in-process
  :class:`~repro.shard.worker.ShardWorker` objects, each on its own
  virtual clock.  Fully deterministic — the tier-1 differential suite
  runs here.
* ``mode="process"``: each worker is a forked OS process served over
  ``multiprocessing`` rings with the compact codec.  Same fates, real
  parallelism — the scaling benchmark runs here.

Failover: a worker that dies mid-run (crash, or :meth:`kill_shard` in
the chaos suite) is detected at ack time; its outstanding serials are
ledgered ``shard_failover`` (never silently lost, never re-delivered —
exactly-once is preserved by *accounting* for the loss, not by hiding
it), and every flow it carried is re-pinned onto live shards.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..faults.adversary import DropLedger
from .books import FabricBooks
from .codec import encode_batch
from .dispatch import FlowDispatcher
from .worker import SHARD_FAILOVER, Fate, ShardSpec, ShardWorker, worker_main

__all__ = ["ShardedKernel"]

#: Seconds to wait for a process-mode ack before probing worker health.
_ACK_POLL_S = 0.5
#: Hard ceiling on ack waiting once the worker is known alive.
_ACK_TIMEOUT_S = 120.0


class _ProcessShard:
    """Ring endpoints plus the process handle for one forked worker."""

    __slots__ = ("process", "rx_ring", "tx_ring")

    def __init__(self, ctx, spec: ShardSpec):
        self.rx_ring = ctx.Queue()
        self.tx_ring = ctx.Queue()
        self.process = ctx.Process(
            target=worker_main, args=(spec, self.rx_ring, self.tx_ring),
            daemon=True, name=f"shard-{spec.shard_id}")
        self.process.start()


class ShardedKernel:
    """N Scout kernels, one flow-hash RX boundary, merged books."""

    def __init__(self, shards: int = 2, mode: str = "threads",
                 ports: Sequence[int] = (6100,),
                 batch: int = 8, inq_len: int = 64, outq_len: int = 64,
                 seed: int = 0, specialize: Optional[bool] = None,
                 control_plane: bool = False):
        if mode not in ("threads", "process"):
            raise ValueError(f"unknown shard mode {mode!r}")
        self.shards = shards
        self.mode = mode
        self.dispatcher = FlowDispatcher(shards)
        #: Fabric-owned per-shard ledgers, local serials; merged books
        #: namespace them ``(shard_id, serial)``.
        self.ledgers: Dict[int, DropLedger] = {
            shard: DropLedger() for shard in range(shards)}
        self._serials: Dict[int, int] = {shard: 0 for shard in range(shards)}
        #: Flow key of every open serial, so delivered payloads can be
        #: appended to the right per-flow stream at settle time.
        self._serial_flow: Dict[Tuple[int, int], bytes] = {}
        #: Delivered payload bytes per flow key, in delivery order — the
        #: differential-parity observable (byte-identical across modes
        #: and shard counts for the same seeded workload).
        self.flow_streams: Dict[bytes, List[bytes]] = {}
        self._specs = [
            ShardSpec(shard, seed=seed + shard, ports=ports, batch=batch,
                      inq_len=inq_len, outq_len=outq_len,
                      specialize=specialize, control_plane=control_plane)
            for shard in range(shards)]
        self._books: Dict[int, Any] = {}
        self._finished: Optional[FabricBooks] = None
        if mode == "threads":
            self.workers: Dict[int, ShardWorker] = {
                shard: ShardWorker(spec)
                for shard, spec in enumerate(self._specs)}
            self._procs: Dict[int, _ProcessShard] = {}
        else:
            # fork shares nothing mutable here (workers build their own
            # worlds post-fork) and starts ~50x faster than spawn.
            ctx = (mp.get_context("fork") if "fork" in mp.get_all_start_methods()
                   else mp.get_context())
            self.workers = {}
            self._procs = {shard: _ProcessShard(ctx, spec)
                           for shard, spec in enumerate(self._specs)}
        self._batch_id = 0

    # -- ingest ---------------------------------------------------------------

    def offer(self, frames: Sequence[bytes],
              metas: Optional[Sequence[Optional[dict]]] = None) -> List[Fate]:
        """Dispatch one frame run across the fabric and collect fates.

        Flow-keyed frames get a shard-local serial (injected into that
        shard's ledger) plus their flow key stamped into per-frame meta;
        the metas ride the ring, survive classification, and come back
        on every fate.  Non-flow frames (ARP, ICMP, fragments) are
        forwarded unledgered — the exactly-once books cover classified
        flow traffic.
        """
        if self._finished is not None:
            raise RuntimeError("fabric already finished")
        from ..core.flowcache import flow_key_frame
        runs = self.dispatcher.dispatch(frames, metas)
        sent: List[Tuple[int, int, List[int]]] = []
        all_fates: List[Fate] = []
        for shard in sorted(runs):
            shard_frames, shard_metas = runs[shard]
            serials: List[int] = []
            out_metas: List[Optional[dict]] = []
            for frame, meta in zip(shard_frames, shard_metas):
                key = flow_key_frame(bytes(frame))
                if key is None:
                    out_metas.append(dict(meta) if meta else None)
                    continue
                serial = self._serials[shard]
                self._serials[shard] = serial + 1
                self.ledgers[shard].inject(serial)
                self._serial_flow[(shard, serial)] = key
                serials.append(serial)
                stamped = dict(meta) if meta else {}
                stamped["shard_serial"] = serial
                stamped["flow"] = key
                out_metas.append(stamped)
            if self.mode == "threads":
                fates = self._feed_thread_worker(shard, shard_frames,
                                                 out_metas, serials)
            else:
                self._batch_id += 1
                self._procs[shard].rx_ring.put(
                    ("batch", self._batch_id,
                     encode_batch(shard_frames, out_metas)))
                sent.append((shard, self._batch_id, serials))
                continue
            all_fates.extend(self._settle(shard, serials, fates))
        for shard, batch_id, serials in sent:
            fates = self._await_fates(shard, batch_id, serials)
            all_fates.extend(self._settle(shard, serials, fates))
        return all_fates

    def _feed_thread_worker(self, shard: int, frames, metas,
                            serials: List[int]) -> List[Fate]:
        worker = self.workers.get(shard)
        if worker is None:  # killed in threads mode
            return self._failover(shard, serials)
        return worker.feed(frames, metas)

    def _await_fates(self, shard: int, batch_id: int,
                     serials: List[int]) -> List[Fate]:
        from queue import Empty
        from .codec import decode_fates
        proc = self._procs[shard]
        waited = 0.0
        while True:
            try:
                reply = proc.tx_ring.get(timeout=_ACK_POLL_S)
            except Empty:
                waited += _ACK_POLL_S
                if not proc.process.is_alive() or waited >= _ACK_TIMEOUT_S:
                    return self._failover(shard, serials)
                continue
            verb = reply[0]
            if verb == "fates" and reply[2] == batch_id:
                return decode_fates(reply[3])
            if verb == "error":
                return self._failover(shard, serials)
            # stale ack from a batch already settled via failover: drop.

    def _settle(self, shard: int, serials: List[int],
                fates: List[Fate]) -> List[Fate]:
        ledger = self.ledgers[shard]
        for serial, category, payload in fates:
            ledger.account(serial, category)
            if payload is not None:
                flow = self._serial_flow.get((shard, serial))
                if flow is not None:
                    self.flow_streams.setdefault(flow, []).append(payload)
        return fates

    # -- failover --------------------------------------------------------------

    def _failover(self, shard: int, outstanding: List[int]) -> List[Fate]:
        """Handle a dead worker: re-pin its flows, fate its serials.

        Returns ``shard_failover`` fates for every un-acked serial; the
        caller settles them through the same path as real acks, so the
        ledger sees exactly one terminal state per serial either way.
        """
        orphaned_flows = self.dispatcher.mark_dead(shard)
        for key in sorted(orphaned_flows):
            self.dispatcher.shard_for_key(key)  # eager re-pin
        proc = self._procs.get(shard)
        if proc is not None and proc.process.is_alive():
            proc.process.terminate()
        return [(serial, SHARD_FAILOVER, None) for serial in outstanding]

    def kill_shard(self, shard: int) -> None:
        """Chaos hook: make a worker vanish mid-run.

        Threads mode drops the worker object (its next dispatch triggers
        the same failover path the process mode takes on a dead ring);
        process mode kills the OS process outright.
        """
        if self.mode == "threads":
            self.workers.pop(shard, None)
        else:
            self._procs[shard].process.kill()

    # -- rebalance -------------------------------------------------------------

    def rebalance(self, key: bytes, to_shard: int) -> None:
        """Move one flow to another shard: drain, invalidate, re-pin.

        The worker-side flow cache entry on the old shard is invalidated
        so a later return of the flow re-classifies from scratch; the
        dispatcher pin makes the move durable.  Safe between ``offer``
        calls — each call runs its shards to quiescence, so there is no
        in-flight traffic to strand.
        """
        if self._finished is not None:
            raise RuntimeError("fabric already finished")
        old = self.dispatcher.pins.get(key)
        if old is None:
            from .dispatch import shard_of
            old = shard_of(key, self.shards)
        if old != to_shard and old not in self.dispatcher.dead:
            if self.mode == "threads":
                worker = self.workers.get(old)
                if worker is not None:
                    worker.invalidate_flow(key)
            else:
                proc = self._procs[old]
                proc.rx_ring.put(("invalidate", key))
                self._await_control(old, "invalidated")
        self.dispatcher.repin(key, to_shard)

    def _await_control(self, shard: int, verb: str):
        from queue import Empty
        proc = self._procs[shard]
        try:
            reply = proc.tx_ring.get(timeout=_ACK_TIMEOUT_S)
        except Empty:
            return None
        return reply if reply[0] == verb else None

    # -- closing the books -----------------------------------------------------

    def finish(self) -> FabricBooks:
        """Stop every worker, collect books, merge, reconcile."""
        if self._finished is not None:
            return self._finished
        from queue import Empty
        for shard in range(self.shards):
            if shard in self._books or shard in self.dispatcher.dead:
                continue
            if self.mode == "threads":
                worker = self.workers.get(shard)
                if worker is not None:
                    self._books[shard] = worker.books()
            else:
                proc = self._procs[shard]
                if not proc.process.is_alive():
                    self.dispatcher.dead.add(shard)
                    continue
                proc.rx_ring.put(("stop",))
                try:
                    reply = proc.tx_ring.get(timeout=_ACK_TIMEOUT_S)
                    if reply[0] == "books":
                        self._books[shard] = reply[2]
                except Empty:
                    pass
                proc.process.join(timeout=10)
        # Every ledger participates in the merge — a dead shard's
        # pre-death deliveries and its failover serials are real history.
        # Per-shard kernel-sum reconciliation only runs where books
        # exist (a dead worker cannot testify).
        self._finished = FabricBooks(dict(self._books), dict(self.ledgers))
        return self._finished

    def __repr__(self) -> str:
        return (f"<ShardedKernel shards={self.shards} mode={self.mode} "
                f"dead={sorted(self.dispatcher.dead)}>")
