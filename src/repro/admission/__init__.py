"""Admission control: per-path memory and CPU accounting (Section 4.4)."""

from .control import (
    CpuAdmission,
    FrameCostModel,
    MemoryAdmission,
    path_memory_footprint,
    theoretical_frame_us,
)

__all__ = ["MemoryAdmission", "CpuAdmission", "FrameCostModel",
           "path_memory_footprint", "theoretical_frame_us"]
