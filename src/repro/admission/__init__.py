"""Admission control: per-path memory and CPU accounting (Section 4.4)."""

from .control import (
    BackpressureShedder,
    CpuAdmission,
    FrameCostModel,
    MemoryAdmission,
    path_memory_footprint,
    theoretical_frame_us,
)

__all__ = ["MemoryAdmission", "CpuAdmission", "FrameCostModel",
           "BackpressureShedder",
           "path_memory_footprint", "theoretical_frame_us"]
