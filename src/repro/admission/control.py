"""Admission control (Section 4.4).

Two resources, both accounted per path:

* **Memory** — "as all memory allocation requests are performed on behalf
  of a given path, it is a simple matter of accounting to decide whether
  a newly created path is admissible or not.  Before starting path
  creation, the admission policy decides how much memory can be granted
  to a new path.  As long as each router in the path lives within that
  constraint, the path creation process is allowed to continue."
  :class:`MemoryAdmission` is the creation-time hook implementing exactly
  that: it is consulted after every stage is appended and aborts creation
  the moment the path's modeled footprint (object + queue buffers)
  exceeds the per-path grant or the system budget.

* **CPU** — "there is a good correlation between the average size of a
  frame (in bits) and the average amount of CPU time it takes to decode a
  frame ... the path execution timings are used to derive the model
  parameters, which in turn, are used for admission control."
  :class:`CpuAdmission` fits that linear model from *measured* per-path
  execution times (the measurement probe installed by the Section 4.2
  transformation rule) and admits a new video only when the predicted
  utilization fits.  When a video does not fit at full rate it proposes
  reduced-quality playback — "the user may request that only every third
  image be displayed" — whose skipped frames the kernel drops at the
  adapter.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .. import params
from ..core.errors import AdmissionError
from ..core.path import Path
from ..mpeg.clips import ClipProfile
from ..mpeg.cost import decode_cost_us, display_cost_us


def path_memory_footprint(path: Path,
                          bytes_per_queue_slot: int = params.ETH_MTU) -> int:
    """Modeled bytes a path pins: the path/stage objects plus its queues'
    worst-case buffer occupancy."""
    total = path.modeled_size()
    for queue in path.q:
        if queue.maxlen:
            total += queue.maxlen * bytes_per_queue_slot
    return total


class MemoryAdmission:
    """Creation-time memory admission (the ``admission`` hook of
    :func:`repro.core.path_create`)."""

    def __init__(self, system_budget: int, per_path_grant: int):
        if system_budget <= 0 or per_path_grant <= 0:
            raise ValueError("budgets must be positive")
        self.system_budget = system_budget
        self.per_path_grant = per_path_grant
        self.committed = 0
        self._granted: Dict[int, int] = {}
        self.denials = 0

    def __call__(self, path: Path) -> None:
        """Consulted after every appended stage during creation."""
        footprint = path_memory_footprint(path)
        if footprint > self.per_path_grant:
            self.denials += 1
            raise AdmissionError(
                f"path {path.pid} needs {footprint} B, grant is "
                f"{self.per_path_grant} B")
        previous = self._granted.get(path.pid, 0)
        if self.committed - previous + footprint > self.system_budget:
            self.denials += 1
            raise AdmissionError(
                f"system memory budget exhausted "
                f"({self.committed - previous + footprint} > "
                f"{self.system_budget} B)")
        self.committed += footprint - previous
        self._granted[path.pid] = footprint

    def release(self, path: Path) -> None:
        """Return a deleted path's grant to the pool."""
        self.committed -= self._granted.pop(path.pid, 0)

    @property
    def available(self) -> int:
        return self.system_budget - self.committed


class FrameCostModel:
    """The frame-size -> CPU-time model, fitted from measurements.

    "Rather than determining these parameters manually, it is much easier
    to measure path execution time in the running system and use those
    measurements to derive the required parameters."

    The regressors are the average frame size in bits (the paper's
    headline correlate) and the stream's pixel count (a creation-time
    invariant of the video path; decode work per frame scales with both
    the coded bits and the image geometry, which is what "parameterized by
    the speed of the CPU, the memory system, and the graphics card" is
    standing in for).
    """

    def __init__(self) -> None:
        self._samples: List[Tuple[float, float, float]] = []  # (bits, px, us)
        self._coeffs: Optional[np.ndarray] = None

    def add_sample(self, avg_frame_bits: float, pixels: float,
                   avg_frame_us: float) -> None:
        self._samples.append((avg_frame_bits, pixels, avg_frame_us))
        self._coeffs = None

    def sample_from_path(self, path: Path, frames: int,
                         cpu_mhz: float = params.CPU_MHZ) -> None:
        """Derive a sample from a live path's own accounting: average
        frame size from its decoder, average per-frame CPU from the cycles
        charged to the path."""
        if frames <= 0:
            raise ValueError("need at least one decoded frame")
        decoder = path.stage_of("MPEG").decoder
        bits = decoder.bits_decoded / max(1, decoder.frames_decoded)
        micros = path.stats.cycles / cpu_mhz / frames
        self.add_sample(bits, decoder.profile.pixels, micros)

    @property
    def n_samples(self) -> int:
        return len(self._samples)

    def fit(self) -> np.ndarray:
        """Least-squares fit ``us = a*bits + b*pixels + c``."""
        if len(self._samples) < 3:
            raise ValueError("need at least three samples to fit the model")
        rows = np.array([(bits, px, 1.0) for bits, px, _ in self._samples])
        micros = np.array([s[2] for s in self._samples])
        coeffs, _residuals, _rank, _sv = np.linalg.lstsq(rows, micros,
                                                         rcond=None)
        self._coeffs = coeffs
        return coeffs

    def correlation(self) -> float:
        """Pearson r between frame bits and CPU time (the paper's 'good
        correlation')."""
        if len(self._samples) < 2:
            raise ValueError("need at least two samples")
        bits = np.array([s[0] for s in self._samples])
        micros = np.array([s[2] for s in self._samples])
        return float(np.corrcoef(bits, micros)[0, 1])

    def predict_frame_us(self, avg_frame_bits: float, pixels: float) -> float:
        if self._coeffs is None:
            self.fit()
        a, b, c = self._coeffs
        return max(0.0, a * avg_frame_bits + b * pixels + c)


class CpuAdmission:
    """CPU admission for video paths, driven by the fitted model."""

    def __init__(self, model: FrameCostModel, headroom: float = 0.95):
        if not 0 < headroom <= 1:
            raise ValueError("headroom must be in (0, 1]")
        self.model = model
        self.headroom = headroom
        self._admitted: Dict[int, float] = {}  # key -> utilization
        self._keys_of_path: Dict[int, List[int]] = {}
        self.denials = 0
        self._next_key = 0

    def predicted_utilization(self, profile: ClipProfile, fps: float,
                              skip: int = 1) -> float:
        """Fraction of the CPU a stream needs at the given rate.

        With every-Nth-frame playback plus adapter-level early discard,
        only 1/N of the frames cost decode+display CPU.
        """
        avg_bits = profile.avg_frame_bits + 24 * profile.macroblocks
        frame_us = self.model.predict_frame_us(avg_bits, profile.pixels)
        effective_fps = fps / max(1, skip)
        return (frame_us * effective_fps) / 1_000_000.0

    @property
    def committed_utilization(self) -> float:
        return sum(self._admitted.values())

    def admit(self, profile: ClipProfile, fps: float, skip: int = 1) -> int:
        """Admit a stream or raise :class:`AdmissionError`.

        Returns an admission key used to release the reservation.
        """
        needed = self.predicted_utilization(profile, fps, skip)
        if self.committed_utilization + needed > self.headroom:
            self.denials += 1
            raise AdmissionError(
                f"{profile.name}@{fps:.0f}fps needs {needed:.2f} CPU, "
                f"only {self.headroom - self.committed_utilization:.2f} left")
        self._next_key += 1
        self._admitted[self._next_key] = needed
        return self._next_key

    def release(self, key: int) -> None:
        self._admitted.pop(key, None)

    def admit_path(self, path: Path, profile: ClipProfile, fps: float,
                   skip: int = 1) -> int:
        """Admit a stream on behalf of *path*, tying the reservation to
        the path's lifetime: the key is released automatically when the
        path is deleted (watchdog rebuilds, pool drains), so callers that
        lose track of a member never leak CPU budget."""
        key = self.admit(profile, fps, skip)
        self._keys_of_path.setdefault(path.pid, []).append(key)
        path.add_delete_hook(self.release_path)
        return key

    def release_path(self, path: Path) -> None:
        """Release every reservation made via :meth:`admit_path`."""
        for key in self._keys_of_path.pop(path.pid, ()):
            self.release(key)

    def suggest_skip(self, profile: ClipProfile, fps: float,
                     max_skip: int = 8) -> Optional[int]:
        """Smallest every-Nth reduction that fits, or None if even 1/N
        at ``max_skip`` does not."""
        for skip in range(1, max_skip + 1):
            needed = self.predicted_utilization(profile, fps, skip)
            if self.committed_utilization + needed <= self.headroom:
                return skip
        return None


class BackpressureShedder:
    """Arrival-time admission driven by bottleneck-queue occupancy.

    Creation-time admission (:class:`MemoryAdmission` /
    :class:`CpuAdmission`) decides whether a *path* may exist; this is
    the per-message complement for overload: backpressure from the
    bottleneck queues propagated to the admission point.  The shedder
    watches a set of queues and, once the deepest one crosses
    ``high_occupancy``, sheds every arrival until it falls back below
    ``low_occupancy`` (hysteresis, so the decision does not chatter at
    the threshold).

    Because the check runs *before* each enqueue against live depth, the
    watched queues obey a hard bound: depth never exceeds
    ``floor(high_occupancy * maxlen) + 1`` while the shedder is the only
    producer — the bound the adversarial stability verdict checks.

    ``on_pressure(fn)`` listeners observe shed-state transitions
    (``fn(shedding: bool)``); the degradation governor's ``pressure_fn``
    hook and the watchdog's ``overload_check`` are wired to
    :attr:`shedding` so crafted overload degrades quality instead of
    provoking rebuild storms.
    """

    #: Drop/shed category recorded for messages refused at admission.
    CATEGORY = "backpressure_shed"

    def __init__(self, queues=(), high_occupancy: float = 0.75,
                 low_occupancy: float = 0.5):
        if not 0 < low_occupancy <= high_occupancy <= 1:
            raise ValueError("need 0 < low_occupancy <= high_occupancy <= 1")
        self.queues = list(queues)
        self.high_occupancy = high_occupancy
        self.low_occupancy = low_occupancy
        self.shedding = False
        self.shed_count = 0
        self.admitted = 0
        self.transitions = 0
        self._listeners = []

    def watch(self, queue) -> None:
        if queue not in self.queues:
            self.queues.append(queue)

    def on_pressure(self, fn) -> None:
        """Register ``fn(shedding)`` to run on every state transition."""
        self._listeners.append(fn)

    def _occupancy(self) -> float:
        worst = 0.0
        for queue in self.queues:
            if queue.maxlen:
                occupancy = len(queue) / queue.maxlen
                if occupancy > worst:
                    worst = occupancy
        return worst

    def depth_bound(self) -> int:
        """The hard per-queue depth bound the shedder enforces."""
        maxlen = max((q.maxlen or 0 for q in self.queues), default=0)
        return int(self.high_occupancy * maxlen) + 1

    def admit(self) -> bool:
        """Admit or shed the arrival about to be enqueued."""
        occupancy = self._occupancy()
        if self.shedding:
            if occupancy <= self.low_occupancy:
                self._transition(False)
        elif occupancy >= self.high_occupancy:
            self._transition(True)
        if self.shedding:
            self.shed_count += 1
            return False
        self.admitted += 1
        return True

    def _transition(self, shedding: bool) -> None:
        self.shedding = shedding
        self.transitions += 1
        for fn in self._listeners:
            fn(shedding)

    def __repr__(self) -> str:
        return (f"<BackpressureShedder queues={len(self.queues)} "
                f"shedding={self.shedding} shed={self.shed_count} "
                f"admitted={self.admitted}>")


def theoretical_frame_us(profile: ClipProfile) -> float:
    """Ground-truth per-frame cost from the simulator's own cost model —
    what the fitted model should approximate."""
    avg_bits = profile.avg_frame_bits + 24 * profile.macroblocks
    return (decode_cost_us(int(avg_bits), profile.macroblocks)
            + display_cost_us(profile.pixels))
