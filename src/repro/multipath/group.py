"""PathGroup: one flow class served by N parallel paths.

The paper's invariant is "one flow → one path"; a group relaxes it to
"one flow class → a set of structurally identical paths" while keeping
every per-path property the paper cares about — early demux, per-path
accounting, per-path scheduling — intact, because each member *is* an
ordinary path.  The only new mechanism is the dispatch decision, and that
happens exactly where the paper puts classification: at the demux
boundary (see :func:`repro.core.classify.classify`).

Lifecycle integration:

* membership is advertised on the path itself (``path.group`` /
  ``path.group_id``), so the classifier needs one attribute probe on the
  common no-group case;
* every member gets a delete hook: a member dying (watchdog rebuild,
  explicit teardown) removes itself from the group and fires the group's
  membership hooks, so demux anchors can be re-bound and warm spares
  promoted without the deleter knowing groups exist;
* an optional ``affinity_of(msg)`` keeps related messages on one member —
  the MPEG kernel uses the frame number, since a frame's packets must all
  take the same path to reassemble.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from typing import Any, Callable, Dict, List, Optional

from ..core.path import ESTABLISHED, Path
from .policies import SelectionPolicy, bottleneck_depth, make_policy

_gid_counter = itertools.count(1)

#: Membership-event names passed to on-change hooks.
MEMBER_ADDED, MEMBER_REMOVED = "added", "removed"


class PathGroup:
    """A set of parallel paths dispatched by a selection policy.

    Parameters
    ----------
    policy:
        A :class:`~repro.multipath.SelectionPolicy` instance, class, or
        registry name (``"round_robin"``, ``"least_loaded"``,
        ``"deadline_slack"``, ``"weighted_accounting"``).
    name:
        Display name for metrics/diagnostics.
    affinity_of:
        Optional ``affinity_of(msg) -> Optional[hashable]``; messages
        with equal non-None affinity keys are dispatched to the same
        member (as long as it stays live).  The affinity map is bounded
        LRU so an adversarial key stream cannot grow it without bound.
    affinity_capacity:
        Bound on the affinity map.
    min_respread_interval:
        Debounce for sticky re-spreads: at least this many dispatches
        must happen between two pin invalidations, so a policy whose
        imbalance test stays true for a while cannot thrash the cache.
    """

    def __init__(self, policy: Any = "round_robin",
                 name: Optional[str] = None,
                 affinity_of: Optional[Callable[[Any], Any]] = None,
                 affinity_capacity: int = 256,
                 min_respread_interval: int = 64):
        self.gid = next(_gid_counter)
        self.name = name or f"group{self.gid}"
        self.policy: SelectionPolicy = make_policy(policy)
        self.members: List[Path] = []
        self.affinity_of = affinity_of
        self.affinity_capacity = affinity_capacity
        self._affinity: "OrderedDict[Any, Path]" = OrderedDict()
        self.min_respread_interval = min_respread_interval
        self._dispatches_since_respread = min_respread_interval
        self._on_change: List[Callable[["PathGroup", Path, str], None]] = []
        # counters
        self.dispatches = 0
        self.dispatch_failures = 0
        self.respreads = 0
        self.members_added = 0
        self.members_removed = 0
        # optional metric mirrors
        self._metric_dispatches = None
        self._metric_failures = None
        self._metric_respreads = None

    def __len__(self) -> int:
        return len(self.members)

    def __repr__(self) -> str:
        return (f"<PathGroup #{self.gid} {self.name!r} "
                f"policy={self.policy.name} members={len(self.members)}>")

    # -- membership ---------------------------------------------------------

    def add(self, path: Path) -> Path:
        """Add *path* as a member (idempotent).

        The path must not belong to another group — a path has one
        accounting identity and splitting it across groups would make
        both groups' load signals lie.
        """
        if path.group is self:
            return path
        if path.group is not None:
            raise ValueError(
                f"path #{path.pid} already belongs to {path.group!r}")
        path.group = self
        path.group_id = self.gid
        path.add_delete_hook(self._on_member_delete)
        self.members.append(path)
        self.members_added += 1
        self._fire(path, MEMBER_ADDED)
        return path

    def remove(self, path: Path) -> None:
        """Detach *path* (idempotent); the path itself stays alive."""
        if path.group is not self:
            return
        self.members.remove(path)
        path.group = None
        path.group_id = None
        self._drop_affinities(path)
        self.members_removed += 1
        self._fire(path, MEMBER_REMOVED)

    def on_change(self, hook: Callable[["PathGroup", Path, str], None]
                  ) -> None:
        """Register ``hook(group, path, event)`` fired on every
        membership change (*event* is ``"added"`` or ``"removed"``).
        The kernel uses this to re-bind demux ports when an anchor dies;
        pools use it to top the group back up."""
        self._on_change.append(hook)

    def live_members(self) -> List[Path]:
        return [p for p in self.members if p.state == ESTABLISHED]

    def _on_member_delete(self, path: Path) -> None:
        # Runs at the end of Path.delete: flow-cache entries are already
        # purged and the stages' demux bindings already released, so the
        # membership hooks observe a fully-dead member.
        self.remove(path)

    def _fire(self, path: Path, event: str) -> None:
        for hook in list(self._on_change):
            hook(self, path, event)

    # -- dispatch (called by the classifier) --------------------------------

    def dispatch(self, msg: Any) -> Optional[Path]:
        """Select the live member that serves *msg*, or ``None`` when the
        group has no live member (the caller records the drop)."""
        live = self.live_members()
        if not live:
            return None
        self.dispatches += 1
        self._dispatches_since_respread += 1
        if self._metric_dispatches is not None:
            self._metric_dispatches.inc()
        if self.affinity_of is not None:
            key = self.affinity_of(msg)
            if key is not None:
                return self._dispatch_with_affinity(key, live, msg)
        return self.policy.select(live, msg)

    def _dispatch_with_affinity(self, key: Any, live: List[Path],
                                msg: Any) -> Path:
        member = self._affinity.get(key)
        if member is not None and member.state == ESTABLISHED:
            self._affinity.move_to_end(key)
            return member
        member = self.policy.select(live, msg)
        self._affinity[key] = member
        self._affinity.move_to_end(key)
        while len(self._affinity) > self.affinity_capacity:
            self._affinity.popitem(last=False)
        return member

    def dispatch_batch(self, msgs: Any) -> List[Any]:
        """Dispatch every message in *msgs*, splitting the batch by member.

        Each message takes the same per-message :meth:`dispatch` decision
        it would take alone (so round-robin advancement, affinity pins,
        and the dispatch counters are identical to N individual calls),
        and the batch is split into maximal *consecutive* runs placed on
        the same member: the return value is an ordered list of
        ``(member, run)`` pairs whose concatenated runs reproduce the
        input order exactly.  Frame affinity therefore keeps a frame's
        packets in one run, while arrival order across members is
        preserved for the caller to enqueue run by run.  Messages that
        found no live member land in runs whose member is ``None`` (the
        caller records those drops, as with :meth:`dispatch`).
        """
        splits: List[Any] = []
        for msg in msgs:
            member = self.dispatch(msg)
            if splits and splits[-1][0] is member:
                splits[-1][1].append(msg)
            else:
                splits.append((member, [msg]))
        return splits

    def take_respread(self) -> bool:
        """Consulted by the classifier on sticky cache hits: True means
        "drop this group's pins now" (and resets the debounce)."""
        if not self.policy.sticky:
            return False
        if self._dispatches_since_respread < self.min_respread_interval:
            return False
        if not self.policy.should_respread(self.live_members()):
            return False
        self._dispatches_since_respread = 0
        self.respreads += 1
        if self._metric_respreads is not None:
            self._metric_respreads.inc()
        return True

    def note_dispatch_failure(self) -> None:
        self.dispatch_failures += 1
        if self._metric_failures is not None:
            self._metric_failures.inc()

    def _drop_affinities(self, path: Path) -> None:
        stale = [k for k, p in self._affinity.items() if p is path]
        for key in stale:
            del self._affinity[key]

    # -- observability ------------------------------------------------------

    def bind_metrics(self, registry: Any, name: str = "multipath") -> None:
        labels = {"group": self.name, "policy": self.policy.name}
        self._metric_dispatches = registry.counter(
            f"{name}_dispatches_total", **labels)
        self._metric_failures = registry.counter(
            f"{name}_dispatch_failures_total", **labels)
        self._metric_respreads = registry.counter(
            f"{name}_respreads_total", **labels)

    def stats(self) -> Dict[str, Any]:
        live = self.live_members()
        return {
            "gid": self.gid,
            "name": self.name,
            "policy": self.policy.name,
            "members": len(self.members),
            "live_members": len(live),
            "dispatches": self.dispatches,
            "dispatch_failures": self.dispatch_failures,
            "respreads": self.respreads,
            "members_added": self.members_added,
            "members_removed": self.members_removed,
            "bottleneck_depths": {p.pid: bottleneck_depth(p) for p in live},
        }
