"""Multipath dispatch: path groups, warm path pools, selection policies.

An extension beyond the paper (which binds one flow to one path): a
:class:`PathGroup` serves one flow *class* with N parallel paths chosen
per-message or per-flow by a :class:`SelectionPolicy`, dispatched at the
demux boundary (:func:`repro.core.classify.classify`); a
:class:`PathPool` keeps pre-established paths warm, keyed on their
canonicalized invariant sets, so high-churn workloads skip the four-phase
creation pipeline.  See DESIGN.md §12.
"""

from .group import MEMBER_ADDED, MEMBER_REMOVED, PathGroup
from .policies import (
    POLICIES,
    DeadlineSlackPolicy,
    LeastLoadedPolicy,
    RoundRobinPolicy,
    SelectionPolicy,
    WeightedAccountingPolicy,
    bottleneck_depth,
    make_policy,
)
from .pool import PathPool, canonical_signature

__all__ = [
    "PathGroup",
    "PathPool",
    "SelectionPolicy",
    "RoundRobinPolicy",
    "LeastLoadedPolicy",
    "DeadlineSlackPolicy",
    "WeightedAccountingPolicy",
    "POLICIES",
    "make_policy",
    "bottleneck_depth",
    "canonical_signature",
    "MEMBER_ADDED",
    "MEMBER_REMOVED",
]
