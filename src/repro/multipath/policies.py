"""Selection policies: which group member serves the next message.

The paper's architecture binds one flow to one path; a
:class:`~repro.multipath.PathGroup` generalizes that to "one flow class →
N parallel paths" and delegates the per-message (or per-flow) placement
decision to a pluggable policy.  Each policy reads only state the path
architecture already exposes — queue depths (:attr:`Path.q`), cycle
accounting (:attr:`PathStats.cycles`), EDF deadlines (the wakeup hook of
Section 3.2) — so adding a policy never requires touching the data path.

Two dispatch disciplines, chosen by the policy's ``sticky`` flag:

* **non-sticky** (per-message): every message is re-placed.  The flow
  cache stores the demux *anchor*, so classification stays one probe but
  each hit re-runs :meth:`SelectionPolicy.select`.
* **sticky** (per-flow): the first message of a flow is placed and the
  chosen member is pinned in the flow cache; later messages ride the pin
  with zero policy overhead.  The policy may request a *re-spread*
  (:meth:`should_respread`), which bulk-invalidates the group's pins so
  every flow is re-placed on its next message.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Sequence

from ..core.path import Path

_INF = float("inf")


def bottleneck_depth(path: Path) -> int:
    """A path's load proxy: the depth of its fullest queue.

    The deepest of the four per-path queues is where backpressure will
    bite first, so it is the honest single-number answer to "how busy is
    this path right now".
    """
    return max(len(q) for q in path.q)


def _edf_deadline(path: Path, now_us: float) -> float:
    """The path's next deadline under EDF, or +inf when it has none.

    Paths scheduled by the EDF policy stash a deadline probe in their
    attrs (see :meth:`repro.display.router.DisplayStage`); best-effort
    paths have no deadline and thus infinite slack.
    """
    probe = path.attrs.get("_edf_deadline_fn")
    if probe is None:
        return _INF
    try:
        deadline = probe()
    except Exception:
        return _INF
    return _INF if deadline is None else float(deadline)


class SelectionPolicy:
    """Base class: subclasses override :meth:`select` (and optionally
    :meth:`should_respread` for sticky policies)."""

    #: registry key and display name.
    name = "base"
    #: True = pin flows to the selected member in the flow cache.
    sticky = False

    def select(self, members: Sequence[Path], msg: Any) -> Path:
        """Pick the member that serves *msg*.  *members* is non-empty and
        contains only ESTABLISHED paths."""
        raise NotImplementedError

    def should_respread(self, members: Sequence[Path]) -> bool:
        """Sticky policies: return True to drop every pin so flows are
        re-placed.  Non-sticky policies never need this."""
        return False

    def __repr__(self) -> str:
        return f"<{type(self).__name__} sticky={self.sticky}>"


class RoundRobinPolicy(SelectionPolicy):
    """Cycle through the members — the load-oblivious baseline."""

    name = "round_robin"
    sticky = False

    def __init__(self) -> None:
        self._next = 0

    def select(self, members: Sequence[Path], msg: Any) -> Path:
        chosen = members[self._next % len(members)]
        self._next += 1
        return chosen


class LeastLoadedPolicy(SelectionPolicy):
    """Send each message to the member with the shallowest bottleneck
    queue — join-the-shortest-queue over :func:`bottleneck_depth`.

    ``hysteresis`` dampens the re-dispatch oscillation an adversary can
    otherwise induce: with 0 (the default) every message chases the
    instantaneous minimum, so an attacker alternating bursts can make the
    policy ping-pong between members in lockstep with its own arrivals.
    With ``hysteresis=h`` the previous choice is kept unless some other
    member is shallower by *more than* ``h`` messages, so small crafted
    imbalances no longer flip the decision.
    """

    name = "least_loaded"
    sticky = False

    def __init__(self, hysteresis: int = 0):
        if hysteresis < 0:
            raise ValueError("hysteresis must be non-negative")
        self.hysteresis = hysteresis
        self._last: Optional[Path] = None
        self.switches = 0

    def select(self, members: Sequence[Path], msg: Any) -> Path:
        best = min(members, key=bottleneck_depth)
        last = self._last
        if (self.hysteresis and last is not None and last in members
                and bottleneck_depth(last)
                <= bottleneck_depth(best) + self.hysteresis):
            return last
        if last is not None and best is not last:
            self.switches += 1
        self._last = best
        return best


class DeadlineSlackPolicy(SelectionPolicy):
    """Prefer the member with the most EDF slack.

    A member whose next deadline is imminent is about to burn its CPU
    allocation on real-time work; steering new messages toward the member
    with the *latest* deadline (ties broken by queue depth) keeps
    best-effort load away from deadline-critical paths.  Members without
    deadlines (no EDF wakeup installed) have infinite slack and soak up
    load first.
    """

    name = "deadline_slack"
    sticky = False

    def __init__(self, now_fn: Optional[Callable[[], float]] = None):
        #: clock used to compute slack; defaults to deadline-ordering
        #: only (absolute slack needs a notion of "now").
        self.now_fn = now_fn

    def select(self, members: Sequence[Path], msg: Any) -> Path:
        now = self.now_fn() if self.now_fn is not None else 0.0
        return max(members,
                   key=lambda p: (_edf_deadline(p, now),
                                  -bottleneck_depth(p)))


class WeightedAccountingPolicy(SelectionPolicy):
    """Sticky placement weighted by each member's cycle account.

    New flows are pinned to the member that has been charged the fewest
    cycles (:attr:`PathStats.cycles` — the paper's per-path resource
    accounting doing double duty as a load balancer's weight).  Because
    pins are long-lived, the policy watches for imbalance: when the
    busiest member's cycle charge exceeds ``respread_ratio`` times the
    idlest member's, it requests a re-spread and the flow cache's pins
    for this group are dropped in bulk.
    """

    name = "weighted_accounting"
    sticky = True

    def __init__(self, respread_ratio: float = 4.0):
        if respread_ratio <= 1.0:
            raise ValueError("respread_ratio must exceed 1")
        self.respread_ratio = respread_ratio

    def select(self, members: Sequence[Path], msg: Any) -> Path:
        return min(members, key=lambda p: p.stats.cycles)

    def should_respread(self, members: Sequence[Path]) -> bool:
        if len(members) < 2:
            return False
        charges = [p.stats.cycles for p in members]
        busiest, idlest = max(charges), min(charges)
        return busiest > self.respread_ratio * max(idlest, 1.0)


#: name -> policy class, for attribute-driven construction.
POLICIES: Dict[str, type] = {
    cls.name: cls for cls in (
        RoundRobinPolicy, LeastLoadedPolicy, DeadlineSlackPolicy,
        WeightedAccountingPolicy,
    )
}


def make_policy(spec: Any, **kwargs: Any) -> SelectionPolicy:
    """Coerce *spec* (a policy instance, class, or registry name) into a
    :class:`SelectionPolicy` instance."""
    if isinstance(spec, SelectionPolicy):
        return spec
    if isinstance(spec, type) and issubclass(spec, SelectionPolicy):
        return spec(**kwargs)
    cls = POLICIES.get(spec)
    if cls is None:
        raise ValueError(
            f"unknown selection policy {spec!r}; known: "
            f"{sorted(POLICIES)}")
    return cls(**kwargs)
