"""PathPool: warm, pre-established paths keyed on their invariant set.

Path creation is the expensive end of the paper's architecture — the
four-phase pipeline walks the router graph, runs establish hooks, applies
transformation rules, and compiles the deliver chain.  For workloads that
create and destroy structurally identical paths at high rate (a web
server's per-client connection paths, a group's replacement members), the
pool amortizes that cost: paths are created once, parked ESTABLISHED, and
handed out on demand in O(1).

Design points:

* **keying** — paths are interchangeable iff their creation invariants
  match; :func:`canonical_signature` canonicalizes an attribute set
  (private ``_``-prefixed bookkeeping keys excluded) into a hashable key;
* **admission-integrated** — pooled paths are real paths created through
  :func:`~repro.core.path_create.path_create` with the pool's admission
  hook, so warm spares count against the memory budget exactly like live
  paths, and their grants auto-release on delete (the pool can never leak
  budget);
* **self-cleaning** — every pooled path carries a delete hook that drops
  it from the pool if something else (a watchdog, an explicit
  ``path_delete``) destroys it behind the pool's back, and parking a path
  purges its flow-cache entries so no cached flow keeps classifying onto
  an idle spare;
* **low-watermark refill** — ``acquire`` tops the bucket back up to
  ``low_watermark`` after a hit, so a burst of acquisitions finds warm
  paths instead of degrading to cold creates.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..core.attributes import Attrs, as_attrs
from ..core.path import ESTABLISHED, Path
from ..core.path_create import path_create

Signature = Tuple[Tuple[str, str], ...]


def canonical_signature(attrs: Any) -> Signature:
    """Canonicalize an invariant set into a hashable pool key.

    Keys are sorted; values are compared by ``repr`` so unhashable
    attribute values (lists, dicts) still key correctly; ``_``-prefixed
    keys are bookkeeping stamped onto the attrs *by* path machinery
    (applied transforms, observability probes) rather than invariants the
    creator asked for, so they are excluded.
    """
    if isinstance(attrs, Attrs):
        mapping: Mapping[str, Any] = attrs.snapshot()
    else:
        mapping = dict(attrs or {})
    return tuple(sorted((key, repr(value)) for key, value in mapping.items()
                        if not key.startswith("_")))


class PathPool:
    """A keyed pool of warm (pre-established) paths.

    Parameters
    ----------
    router:
        The router paths are created on (first argument of
        :func:`path_create`).
    transforms, admission:
        Passed through to :func:`path_create` for every path the pool
        creates; the admission hook makes warm spares count against the
        system budget.
    low_watermark:
        After a warm hit, the bucket is refilled back up to this many
        idle paths (0 disables refill).
    max_idle:
        Hard cap per bucket; :meth:`release` deletes instead of parking
        beyond it.
    """

    def __init__(self, router: Any, transforms: Any = None,
                 admission: Optional[Callable[[Path], None]] = None,
                 low_watermark: int = 0, max_idle: int = 16):
        if max_idle < 1:
            raise ValueError("max_idle must be positive")
        if low_watermark > max_idle:
            raise ValueError("low_watermark cannot exceed max_idle")
        self.router = router
        self.transforms = transforms
        self.admission = admission
        self.low_watermark = low_watermark
        self.max_idle = max_idle
        self._idle: Dict[Signature, List[Path]] = {}
        self._signature_of: Dict[int, Signature] = {}  # pid -> bucket key
        #: pid -> signature of the attrs the path was *requested* with.
        #: Creation stamps routing bookkeeping (resolved link addresses,
        #: ethertypes) onto the attribute set, so the path's final attrs
        #: hash differently from the invariants the next caller will ask
        #: for — release() must park under the birth signature.
        self._birth_signature: Dict[int, Signature] = {}
        # counters
        self.hits = 0
        self.misses = 0
        self.prewarmed = 0
        self.refills = 0
        self.parked = 0
        self.discards = 0
        # optional metric mirrors
        self._metric_hits = None
        self._metric_misses = None

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._idle.values())

    def idle_count(self, attrs: Any) -> int:
        return len(self._idle.get(canonical_signature(attrs), ()))

    def __repr__(self) -> str:
        return (f"<PathPool idle={len(self)} buckets={len(self._idle)} "
                f"hits={self.hits} misses={self.misses}>")

    # -- creation -----------------------------------------------------------

    def _create(self, attrs: Attrs, sig: Signature) -> Path:
        # Every path gets its own copy of the invariants: creation and
        # the runtime stamp per-path bookkeeping (resolved addresses,
        # deadline probes, arrival EWMAs) onto the attribute set, which
        # must not be shared between siblings or leak back to the caller.
        path = path_create(self.router, Attrs(attrs.snapshot()),
                           transforms=self.transforms,
                           admission=self.admission)
        path.add_delete_hook(self._on_path_delete)
        self._birth_signature[path.pid] = sig
        return path

    def prewarm(self, attrs: Any, count: int = 1) -> int:
        """Create *count* paths for *attrs* and park them.  Returns how
        many were actually added (the bucket cap may bite)."""
        attrs = as_attrs(attrs)
        sig = canonical_signature(attrs)
        bucket = self._idle.setdefault(sig, [])
        added = 0
        while len(bucket) < self.max_idle and added < count:
            path = self._create(attrs, sig)
            self._park(sig, bucket, path)
            added += 1
            self.prewarmed += 1
        return added

    # -- acquire / release --------------------------------------------------

    def acquire(self, attrs: Any) -> Path:
        """Return a path for *attrs*: a warm one when available (O(1)),
        a cold-created one otherwise.  Either way the caller owns it."""
        attrs = as_attrs(attrs)
        sig = canonical_signature(attrs)
        bucket = self._idle.get(sig)
        while bucket:
            path = bucket.pop()
            self._signature_of.pop(path.pid, None)
            if path.state != ESTABLISHED:
                continue  # died while parked and the hook missed it
            self.hits += 1
            if self._metric_hits is not None:
                self._metric_hits.inc()
            self._refill(sig, attrs)
            return path
        self.misses += 1
        if self._metric_misses is not None:
            self._metric_misses.inc()
        return self._create(attrs, sig)

    def release(self, path: Path) -> bool:
        """Park *path* for reuse.  Its flow-cache entries are purged so
        no established flow keeps resolving to an idle spare.  A path
        that is not ESTABLISHED, or whose bucket is full, is deleted
        instead (returns False)."""
        if path.state != ESTABLISHED:
            self.discards += 1
            if path.state != "deleted":
                path.delete()
            return False
        if path.group is not None:
            raise ValueError(
                f"path #{path.pid} still belongs to {path.group!r}; "
                f"remove it from the group before pooling")
        sig = self._birth_signature.get(path.pid)
        if sig is None:  # a foreign path donated to the pool
            sig = canonical_signature(path.attrs)
            self._birth_signature[path.pid] = sig
        bucket = self._idle.setdefault(sig, [])
        if len(bucket) >= self.max_idle:
            self.discards += 1
            path.delete()
            return False
        path.purge_flow_caches()
        self._park(sig, bucket, path)
        self.parked += 1
        return True

    def discard(self, path: Path) -> None:
        """Delete *path* and forget it (watchdogs call this on stall: a
        wedged path must not be handed out again)."""
        self._forget(path)
        self.discards += 1
        if path.state != "deleted":
            path.delete()

    def drain(self) -> int:
        """Delete every idle path (shutdown / reconfiguration).  Their
        admission grants come back via the delete hooks."""
        drained = 0
        for bucket in list(self._idle.values()):
            for path in list(bucket):
                self.discard(path)
                drained += 1
        self._idle = {sig: b for sig, b in self._idle.items() if b}
        return drained

    # -- internals ----------------------------------------------------------

    def _park(self, sig: Signature, bucket: List[Path], path: Path) -> None:
        bucket.append(path)
        self._signature_of[path.pid] = sig

    def _refill(self, sig: Signature, attrs: Attrs) -> None:
        bucket = self._idle.setdefault(sig, [])
        while len(bucket) < self.low_watermark:
            self._park(sig, bucket, self._create(attrs, sig))
            self.refills += 1

    def _forget(self, path: Path) -> None:
        sig = self._signature_of.pop(path.pid, None)
        if sig is None:
            return
        bucket = self._idle.get(sig)
        if bucket is not None:
            try:
                bucket.remove(path)
            except ValueError:
                pass
            if not bucket:
                self._idle.pop(sig, None)

    def _on_path_delete(self, path: Path) -> None:
        # A pooled (or pool-created) path died behind our back — a
        # watchdog rebuild, an explicit path_delete.  Drop the idle entry
        # so acquire can never return it.
        self._forget(path)
        self._birth_signature.pop(path.pid, None)

    # -- observability ------------------------------------------------------

    def bind_metrics(self, registry: Any, name: str = "path_pool") -> None:
        self._metric_hits = registry.counter(f"{name}_hits_total")
        self._metric_misses = registry.counter(f"{name}_misses_total")

    def stats(self) -> Dict[str, Any]:
        return {
            "idle": len(self),
            "buckets": len(self._idle),
            "hits": self.hits,
            "misses": self.misses,
            "prewarmed": self.prewarmed,
            "refills": self.refills,
            "parked": self.parked,
            "discards": self.discards,
        }
