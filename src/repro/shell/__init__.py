"""SHELL subsystem: the command router that creates paths on request."""

from .router import (
    SHELL_COMMAND_US,
    ShellCommand,
    ShellRouter,
    ShellStage,
    parse_command,
)

__all__ = ["ShellRouter", "ShellStage", "ShellCommand", "parse_command",
           "SHELL_COMMAND_US"]
