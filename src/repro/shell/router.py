"""The SHELL router: network commands that create paths (Section 4.1).

"SHELL is not unlike a UNIX shell in that it waits for a command request
which it then maps into a command 'invocation'.  In the context of Scout,
this involves mapping the command name into an appropriate path create
operation.  To create a path, SHELL requires two pieces of information:
the router on which the path create operation is to be invoked and a set
of attributes (invariants)."

Commands arrive as UDP text of the form::

    mpeg_decode ip=10.0.0.2 port=7200 clip=Neptune

The kernel registers each command with its target router, an attribute
builder, and a post-create hook (which spawns the path's thread).  SHELL
replies to the requester with the new path's id and local port.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from ..core.attributes import Attrs
from ..core.errors import ScoutError
from ..core.graph import register_router
from ..core.message import Msg
from ..core.path import Path
from ..core.path_create import path_create
from ..core.router import DemuxResult, NextHop, Router, Service
from ..core.stage import BWD, FWD, Stage, forward, turn_around
from ..core.transform import TransformRegistry
from ..net.common import charge

#: CPU cost of parsing a command and invoking pathCreate (the ~200 us
#: measured creation cost plus parsing overhead).
SHELL_COMMAND_US = 250.0

AttrsBuilder = Callable[[Dict[str, str], Dict[str, Any]], Attrs]
PostCreate = Callable[[Path, Dict[str, str], Msg], None]


class ShellCommand:
    """One registered command: name -> (target router, attrs, hook)."""

    __slots__ = ("name", "target", "build_attrs", "post_create")

    def __init__(self, name: str, target: Router, build_attrs: AttrsBuilder,
                 post_create: Optional[PostCreate] = None):
        self.name = name
        self.target = target
        self.build_attrs = build_attrs
        self.post_create = post_create


def parse_command(text: str) -> Tuple[str, Dict[str, str]]:
    """Parse ``name key=value ...`` command text."""
    tokens = text.split()
    if not tokens:
        raise ValueError("empty command")
    args: Dict[str, str] = {}
    for token in tokens[1:]:
        key, sep, value = token.partition("=")
        if not sep or not key:
            raise ValueError(f"malformed argument {token!r}")
        args[key] = value
    return tokens[0], args


class ShellStage(Stage):
    """SHELL's contribution to the command path."""

    def __init__(self, router: "ShellRouter", exit_service):
        super().__init__(router, None, exit_service)
        self.set_deliver(FWD, self._down)
        self.set_deliver(BWD, self._command)

    def _down(self, iface, msg, direction: int, **kwargs):
        return forward(iface, msg, direction, **kwargs)

    def _command(self, iface, msg: Msg, direction: int, **kwargs):
        router: ShellRouter = self.router  # type: ignore[assignment]
        charge(msg, SHELL_COMMAND_US)
        try:
            reply_text = router.execute(msg)
        except (ScoutError, ValueError, KeyError) as exc:
            router.commands_failed += 1
            reply_text = f"error {exc}"
        self._reply(iface, msg, reply_text, direction)
        return None

    def _reply(self, iface, request: Msg, text: str, direction: int) -> None:
        reply = Msg(text.encode("utf-8"))
        if "ip_src" in request.meta:
            reply.meta["ip_dst_override"] = request.meta["ip_src"]
        ports = request.meta.get("udp_ports")
        if ports:
            reply.meta["udp_dport_override"] = ports[0]
        if "eth_src" in request.meta:
            reply.meta["eth_dst_override"] = request.meta["eth_src"]
        turn_around(iface, reply, direction)
        charge(request, reply.meta.get("cost_us", 0.0))


@register_router("ShellRouter")
class ShellRouter(Router):
    """The command shell."""

    SERVICES = ("<down:net",)

    def __init__(self, name: str):
        super().__init__(name)
        self._commands: Dict[str, ShellCommand] = {}
        #: Transformation rules applied to paths SHELL creates.
        self.transforms: Optional[TransformRegistry] = None
        self.commands_run = 0
        self.commands_failed = 0
        #: Paths created by commands, by pid (for inspection/teardown).
        self.created_paths: Dict[int, Path] = {}

    # -- command registry ----------------------------------------------------------

    def register_command(self, name: str, target: Router,
                         build_attrs: AttrsBuilder,
                         post_create: Optional[PostCreate] = None) -> None:
        self._commands[name] = ShellCommand(name, target, build_attrs,
                                            post_create)

    def execute(self, msg: Msg) -> str:
        """Parse and run the command carried by *msg*; returns reply text."""
        name, args = parse_command(msg.to_bytes().decode("utf-8"))
        command = self._commands.get(name)
        if command is None:
            raise ValueError(f"unknown command {name!r}")
        attrs = command.build_attrs(args, msg.meta)
        path = path_create(command.target, attrs, transforms=self.transforms)
        self.created_paths[path.pid] = path
        if command.post_create is not None:
            command.post_create(path, args, msg)
        self.commands_run += 1
        local_port = attrs.get("PA_LOCAL_PORT", "-")
        return f"ok pid={path.pid} port={local_port}"

    # -- path creation (the shell's own command path) ------------------------------------

    def create_stage(self, enter_service: int, attrs: Attrs
                     ) -> Tuple[Optional[Stage], Optional[NextHop]]:
        down = self.service("down")
        if len(down.links) != 1:
            return None, None
        peer_router, peer_service = down.links[0].peer_of(down)
        stage = ShellStage(self, down)
        return stage, NextHop(peer_router, peer_service, attrs)

    def demux(self, msg: Msg, service: Optional[Service],
              offset: int = 0) -> DemuxResult:
        return DemuxResult.drop(f"{self.name}: port binding handles demux")
