"""HTTP subsystem: the web server atop the Figure 3 graph."""

from .router import HTTP_PROC_US, HttpRouter, HttpStage

__all__ = ["HttpRouter", "HttpStage", "HTTP_PROC_US"]
