"""The HTTP router: the application atop the Figure 3 web-server graph.

HTTP bridges two kinds of paths, exactly the way SHELL bridges command
and video paths in the MPEG application:

* a **connection path** per client (HTTP -> TCP -> IP -> ETH), carrying
  requests up (BWD) and responses down (FWD) — "one per TCP connection"
  being the paper's suggested path granularity;
* a **file path** per requested document (VFS -> UFS -> SCSI), created on
  first use with the ``PA_FILE`` and ``PA_FILE_SEQUENTIAL`` invariants —
  web documents are read sequentially, so the UFS stage skips caching,
  the Section 2.2 example of exploiting a web path's global knowledge.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..core.attributes import PA_NET_PARTICIPANTS, Attrs
from ..core.graph import register_router
from ..core.message import Msg
from ..core.path import Path
from ..core.path_create import path_create
from ..core.queues import BWD_OUT
from ..core.router import DemuxResult, NextHop, Router, Service
from ..core.stage import BWD, FWD, Stage, forward, turn_around
from ..fs.messages import FsReply, FsRequest
from ..fs.ufs_router import PA_FILE, PA_FILE_SEQUENTIAL
from ..net.common import PA_LOCAL_PORT, charge

#: Request parsing + response assembly cost.
HTTP_PROC_US = 15.0


class HttpStage(Stage):
    """HTTP's contribution to a connection path."""

    def __init__(self, router: "HttpRouter", exit_service):
        super().__init__(router, None, exit_service)
        self.requests_served = 0
        self.set_deliver(FWD, self._down)
        self.set_deliver(BWD, self._request)

    def _down(self, iface, msg, direction: int, **kwargs):
        return forward(iface, msg, direction, **kwargs)

    def _request(self, iface, msg: Msg, direction: int, **kwargs):
        router: HttpRouter = self.router  # type: ignore[assignment]
        charge(msg, HTTP_PROC_US)
        response = router.handle_request(msg.to_bytes())
        self.requests_served += 1
        reply = Msg(response)
        for key in ("ip_dst_override", "udp_dport_override"):
            if key in msg.meta:
                reply.meta[key] = msg.meta[key]
        # Address the reply to whoever asked (the SHELL precedent): a
        # connection path serving as a group member or a pooled spare may
        # carry requests from clients other than its creation-time
        # participant.  The classifiers stash ``ip_src``/``eth_src`` on
        # the way up; a message injected straight into the path carries
        # the parsed headers the receive stages stashed instead.
        ip_hdr = msg.meta.get("ip_header")
        ip_src = msg.meta.get("ip_src") or (ip_hdr.src if ip_hdr else None)
        if "ip_dst_override" not in reply.meta and ip_src is not None:
            reply.meta["ip_dst_override"] = ip_src
        eth_hdr = msg.meta.get("eth_header")
        eth_src = msg.meta.get("eth_src") or (eth_hdr.src if eth_hdr else None)
        if "eth_dst_override" not in reply.meta and eth_src is not None:
            reply.meta["eth_dst_override"] = eth_src
        turn_around(iface, reply, direction)
        charge(msg, reply.meta.get("cost_us", 0.0))
        return None


@register_router("HttpRouter")
class HttpRouter(Router):
    """A minimal HTTP/1.0 GET server."""

    SERVICES = ("<net:net", "<files:fsClient")

    def __init__(self, name: str):
        super().__init__(name)
        #: Open file paths, one per document ("one per open file").
        self._file_paths: Dict[str, Path] = {}
        #: Optional :class:`~repro.multipath.PathPool` of warm connection
        #: paths, installed via :meth:`use_connection_pool`.
        self._connection_pool = None
        self.requests = 0
        self.not_found = 0

    # -- connection pooling ------------------------------------------------------

    def use_connection_pool(self, pool) -> None:
        """Serve connection paths from *pool*: a client connect becomes a
        warm O(1) acquire instead of a four-phase ``path_create``, and a
        close parks the path for the next connect with the same
        invariants."""
        self._connection_pool = pool

    def connection_path_for(self, client: Tuple[str, int],
                            local_port: int = 80) -> Path:
        """Return a connection path for *client* — pooled when a pool is
        installed, cold-created otherwise."""
        attrs = Attrs({PA_NET_PARTICIPANTS: tuple(client),
                       PA_LOCAL_PORT: local_port})
        if self._connection_pool is not None:
            return self._connection_pool.acquire(attrs)
        return path_create(self, attrs)

    def release_connection(self, path: Path) -> bool:
        """Close a connection path: park it for reuse when pooled (True),
        delete it otherwise (False)."""
        if self._connection_pool is not None:
            return self._connection_pool.release(path)
        path.delete()
        return False

    # -- file paths -------------------------------------------------------------

    def _vfs_target(self):
        files = self.service("files").sole_link()
        return files.peer_of(self.service("files"))

    def file_path_for(self, filename: str) -> Path:
        """Return (creating on first use) the path serving *filename*."""
        path = self._file_paths.get(filename)
        if path is None or path.state == "deleted":
            vfs_router, _service = self._vfs_target()
            path = path_create(vfs_router,
                               Attrs({PA_FILE: filename,
                                      PA_FILE_SEQUENTIAL: True}))
            self._file_paths[filename] = path
        return path

    def read_document(self, filename: str) -> Optional[bytes]:
        """Read a whole document through its file path (synchronously)."""
        from ..core.errors import PathCreationError

        try:
            path = self.file_path_for(filename)
        except PathCreationError:
            return None
        path.deliver(FsRequest(FsRequest.READ, 0, None), FWD)
        reply = path.q[BWD_OUT].try_dequeue()
        if not isinstance(reply, FsReply) or not reply.ok:
            return None
        return reply.data

    # -- request handling -----------------------------------------------------------

    def handle_request(self, raw: bytes) -> bytes:
        self.requests += 1
        try:
            line = raw.split(b"\r\n", 1)[0].decode("utf-8")
            method, target, _version = line.split(" ", 2)
        except (ValueError, UnicodeDecodeError):
            return self._response(400, b"Bad Request")
        if method != "GET":
            return self._response(501, b"Not Implemented")
        body = self.read_document(target)
        if body is None:
            self.not_found += 1
            return self._response(404, b"Not Found")
        return self._response(200, body)

    @staticmethod
    def _response(status: int, body: bytes) -> bytes:
        reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                  501: "Not Implemented"}.get(status, "Error")
        head = (f"HTTP/1.0 {status} {reason}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Content-Type: text/html\r\n\r\n")
        return head.encode("utf-8") + body

    # -- connection paths ----------------------------------------------------------------

    def create_stage(self, enter_service: int, attrs: Attrs
                     ) -> Tuple[Optional[Stage], Optional[NextHop]]:
        participants = attrs.get(PA_NET_PARTICIPANTS)
        if participants is None:
            return None, None
        net = self.service("net")
        if len(net.links) != 1:
            return None, None
        peer_router, peer_service = net.links[0].peer_of(net)
        hop_attrs = attrs
        if PA_LOCAL_PORT not in attrs:
            hop_attrs = attrs.extended(**{PA_LOCAL_PORT: 80})
        stage = HttpStage(self, net)
        return stage, NextHop(peer_router, peer_service, hop_attrs)

    def demux(self, msg: Msg, service: Optional[Service],
              offset: int = 0) -> DemuxResult:
        return DemuxResult.drop(
            f"{self.name}: connection paths are bound by TCP port")
