"""repro: a reproduction of *Making Paths Explicit in the Scout Operating
System* (Mosberger & Peterson, OSDI 1996).

The library has three layers:

* :mod:`repro.core` — the path architecture itself (routers, services,
  spec files, paths, stages, transformation rules, classification);
* :mod:`repro.sim` — the virtual-time substrate (event engine, CPU model,
  non-preemptive threads, round-robin and EDF schedulers) standing in for
  the paper's 300 MHz Alpha;
* application subsystems — :mod:`repro.net` (ETH/ARP/IP/UDP/ICMP/TCP and
  the paper's MFLOW protocol), :mod:`repro.mpeg`, :mod:`repro.display`,
  :mod:`repro.shell`, the :mod:`repro.kernel` Scout and Linux-like
  baseline kernels, :mod:`repro.admission`, and the
  :mod:`repro.experiments` harness that regenerates the paper's tables.

Applications import from the stable :mod:`repro.api` facade (the
``Scout`` entry point, the fluent ``PathBuilder``, and re-exports of
every application-facing name); the layer modules stay importable for
the library and tests.

Quickstart::

    from repro.api import Scout
    # build a router graph, create a path, deliver a message — see
    # examples/quickstart.py

"""

from . import (
    admission,
    api,
    core,
    display,
    experiments,
    faults,
    fs,
    http,
    kernel,
    mpeg,
    multipath,
    net,
    params,
    shell,
    sim,
)

__version__ = "1.0.0"

__all__ = ["api", "core", "sim", "net", "mpeg", "display", "shell", "fs",
           "http", "kernel", "admission", "experiments", "faults",
           "multipath", "params", "__version__"]
