"""Synthetic video clips and the MPEG-like encoder.

The paper evaluates on four clips (Flower, Neptune, RedsNightmare,
Canyon) that are not available; we synthesize statistical stand-ins.  A
clip profile fixes resolution, length, and the frame-size distribution
(mean bits per frame, I/P/B ratios over the GOP, lognormal jitter); the
encoder then emits a *real* bitstream — every macroblock record is
written bit by bit and read back by the decoder — packetized per ALF
(Section 4.1): "the MPEG source sends Ethernet MTU-sized packets that
contain an integral number of work-units (MPEG macroblocks)".

The profiles' ``avg_frame_bits`` were chosen so the cost model's decode +
display time per frame matches the paper's Table 1 Scout column (see
EXPERIMENTS.md for the arithmetic).
"""

from __future__ import annotations

import math
import struct
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from .. import params
from .bitstream import BitWriter

#: Frame types.
I_FRAME, P_FRAME, B_FRAME = 0, 1, 2
FRAME_TYPE_NAMES = ("I", "P", "B")

#: ALF packet header: magic(1) frame_no(4) ftype(1) packet_index(1)
#: flags(1) n_mb(2) payload_bits(4).
PACKET_HEADER_FORMAT = "!BIBBBHI"
PACKET_HEADER_SIZE = struct.calcsize(PACKET_HEADER_FORMAT)
PACKET_MAGIC = 0xA5
FLAG_LAST_PACKET = 0x1
FLAG_FIRST_PACKET = 0x2

#: Bit widths of the per-macroblock record: index(10) size(14) + payload.
MB_INDEX_BITS = 10
MB_SIZE_BITS = 14
MB_MAX_PAYLOAD_BITS = (1 << MB_SIZE_BITS) - 1


class ClipProfile:
    """Statistical description of a video clip."""

    def __init__(self, name: str, width: int, height: int, nframes: int,
                 fps: float, avg_frame_bits: int,
                 gop: str = "IBBPBBPBB",
                 type_ratios: Optional[Dict[int, float]] = None,
                 size_jitter: float = 0.30):
        if width <= 0 or height <= 0:
            raise ValueError("resolution must be positive")
        self.name = name
        self.width = width
        self.height = height
        self.nframes = nframes
        self.fps = fps
        self.avg_frame_bits = avg_frame_bits
        self.gop = gop
        self.type_ratios = type_ratios or {I_FRAME: 2.5, P_FRAME: 1.3,
                                           B_FRAME: 0.55}
        self.size_jitter = size_jitter

    @property
    def pixels(self) -> int:
        return self.width * self.height

    @property
    def macroblocks(self) -> int:
        return math.ceil(self.width / 16) * math.ceil(self.height / 16)

    def frame_type(self, frame_no: int) -> int:
        letter = self.gop[frame_no % len(self.gop)]
        return {"I": I_FRAME, "P": P_FRAME, "B": B_FRAME}[letter]

    def _gop_mean_ratio(self) -> float:
        ratios = [self.type_ratios[self.frame_type(i)]
                  for i in range(len(self.gop))]
        return sum(ratios) / len(ratios)

    def mean_bits_for_type(self, ftype: int) -> float:
        """Mean frame size for a type, normalized so the GOP-wide average
        equals ``avg_frame_bits``."""
        return self.avg_frame_bits * self.type_ratios[ftype] / self._gop_mean_ratio()

    def __repr__(self) -> str:
        return (f"ClipProfile({self.name!r} {self.width}x{self.height} "
                f"{self.nframes}f @{self.fps}fps ~{self.avg_frame_bits}b)")


#: The paper's four clips.  avg_frame_bits is the *coefficient* budget
#: per frame; the encoder adds 24 bits of record overhead per macroblock,
#: so the decoded total lands on the Table 1 calibration targets
#: (Flower 86.7 kb, Neptune 69 kb, RedsNightmare 38 kb, Canyon ~11 kb —
#: see EXPERIMENTS.md for the fit).
FLOWER = ClipProfile("Flower", 352, 240, 150, 30.0, avg_frame_bits=78_800,
                     size_jitter=0.25)
NEPTUNE = ClipProfile("Neptune", 352, 240, 1345, 30.0, avg_frame_bits=61_100,
                      size_jitter=0.30)
REDS_NIGHTMARE = ClipProfile("RedsNightmare", 320, 240, 1210, 30.0,
                             avg_frame_bits=30_800, size_jitter=0.35)
CANYON = ClipProfile("Canyon", 160, 120, 1758, 30.0, avg_frame_bits=9_000,
                     size_jitter=0.25)

PAPER_CLIPS: Sequence[ClipProfile] = (FLOWER, NEPTUNE, REDS_NIGHTMARE, CANYON)


def clip_by_name(name: str) -> ClipProfile:
    for profile in PAPER_CLIPS:
        if profile.name.lower() == name.lower():
            return profile
    raise KeyError(f"no clip profile named {name!r}; "
                   f"known: {[p.name for p in PAPER_CLIPS]}")


class EncodedFrame:
    """One encoded frame: its ALF packets plus bookkeeping."""

    __slots__ = ("number", "ftype", "bits", "n_mb", "packets")

    def __init__(self, number: int, ftype: int, bits: int, n_mb: int,
                 packets: List[bytes]):
        self.number = number
        self.ftype = ftype
        self.bits = bits          # total payload bits across packets
        self.n_mb = n_mb
        self.packets = packets

    def __repr__(self) -> str:
        return (f"<EncodedFrame #{self.number} "
                f"{FRAME_TYPE_NAMES[self.ftype]} {self.bits}b "
                f"{len(self.packets)}pkts>")


class EncodedClip:
    """A fully encoded clip."""

    def __init__(self, profile: ClipProfile, frames: List[EncodedFrame]):
        self.profile = profile
        self.frames = frames

    @property
    def total_bits(self) -> int:
        return sum(frame.bits for frame in self.frames)

    @property
    def avg_frame_bits(self) -> float:
        return self.total_bits / len(self.frames) if self.frames else 0.0

    def packets(self) -> Iterator[bytes]:
        for frame in self.frames:
            yield from frame.packets

    def __repr__(self) -> str:
        return (f"<EncodedClip {self.profile.name} {len(self.frames)}f "
                f"avg={self.avg_frame_bits:.0f}b>")


class MpegEncoder:
    """The synthetic encoder.

    Parameters
    ----------
    profile:
        The clip to synthesize.
    seed:
        RNG seed; identical seeds give identical bitstreams.
    packet_payload_budget:
        Bytes available to MPEG per network packet — the Ethernet MTU
        minus the IP/UDP/MFLOW headers (ALF framing).
    alf:
        When False, packetize as a raw byte stream that ignores
        macroblock boundaries (the non-ALF ablation of DESIGN.md §5).
    """

    def __init__(self, profile: ClipProfile, seed: int = 0,
                 packet_payload_budget: Optional[int] = None,
                 alf: bool = True):
        self.profile = profile
        self.rng = np.random.default_rng(seed)
        if packet_payload_budget is None:
            packet_payload_budget = (params.ETH_MTU - 20 - 8 - 12)
        self.packet_payload_budget = packet_payload_budget
        self.alf = alf

    # -- frame synthesis -------------------------------------------------------

    def _sample_frame_bits(self, ftype: int) -> int:
        mean = self.profile.mean_bits_for_type(ftype)
        sigma = self.profile.size_jitter
        factor = float(self.rng.lognormal(-0.5 * sigma * sigma, sigma))
        return max(200, int(mean * factor))

    def _macroblock_sizes(self, total_bits: int) -> List[int]:
        """Split a frame's coefficient budget across its macroblocks."""
        n_mb = self.profile.macroblocks
        weights = self.rng.random(n_mb) + 0.1
        weights /= weights.sum()
        sizes = [max(1, min(MB_MAX_PAYLOAD_BITS, int(total_bits * w)))
                 for w in weights]
        return sizes

    def encode_frame(self, frame_no: int) -> EncodedFrame:
        ftype = self.profile.frame_type(frame_no)
        target_bits = self._sample_frame_bits(ftype)
        mb_sizes = self._macroblock_sizes(target_bits)
        records: List[bytes] = []
        total_bits = 0
        for index, size in enumerate(mb_sizes):
            writer = BitWriter()
            writer.write(index, MB_INDEX_BITS)
            writer.write(size, MB_SIZE_BITS)
            # Pseudo-coefficients: random bits, written 16 at a time.
            remaining = size
            while remaining > 0:
                chunk = min(16, remaining)
                writer.write(int(self.rng.integers(0, 1 << chunk)), chunk)
                remaining -= chunk
            writer.align()
            records.append(writer.getvalue())
            total_bits += MB_INDEX_BITS + MB_SIZE_BITS + size
        packets = (self._packetize_alf(frame_no, ftype, records)
                   if self.alf else
                   self._packetize_stream(frame_no, ftype, records))
        return EncodedFrame(frame_no, ftype, total_bits,
                            len(mb_sizes), packets)

    # -- packetization -------------------------------------------------------------

    def _make_packet(self, frame_no: int, ftype: int, index: int,
                     flags: int, n_mb: int, payload: bytes) -> bytes:
        header = struct.pack(PACKET_HEADER_FORMAT, PACKET_MAGIC, frame_no,
                             ftype, index & 0xFF, flags, n_mb,
                             len(payload) * 8)
        return header + payload

    def _packetize_alf(self, frame_no: int, ftype: int,
                       records: List[bytes]) -> List[bytes]:
        """An integral number of macroblocks per packet."""
        budget = self.packet_payload_budget - PACKET_HEADER_SIZE
        groups: List[List[bytes]] = [[]]
        used = 0
        for record in records:
            if groups[-1] and used + len(record) > budget:
                groups.append([])
                used = 0
            groups[-1].append(record)
            used += len(record)
        packets = []
        for index, group in enumerate(groups):
            flags = 0
            if index == 0:
                flags |= FLAG_FIRST_PACKET
            if index == len(groups) - 1:
                flags |= FLAG_LAST_PACKET
            packets.append(self._make_packet(frame_no, ftype, index, flags,
                                             len(group), b"".join(group)))
        return packets

    def _packetize_stream(self, frame_no: int, ftype: int,
                          records: List[bytes]) -> List[bytes]:
        """Non-ALF ablation: split on byte boundaries, macroblocks may
        straddle packets (n_mb is only meaningful in aggregate)."""
        budget = self.packet_payload_budget - PACKET_HEADER_SIZE
        blob = b"".join(records)
        pieces = [blob[i:i + budget] for i in range(0, len(blob), budget)] \
            or [b""]
        packets = []
        for index, piece in enumerate(pieces):
            flags = 0
            if index == 0:
                flags |= FLAG_FIRST_PACKET
            if index == len(pieces) - 1:
                flags |= FLAG_LAST_PACKET
            n_mb = len(records) if index == len(pieces) - 1 else 0
            packets.append(self._make_packet(frame_no, ftype, index, flags,
                                             n_mb, piece))
        return packets

    # -- whole clips ----------------------------------------------------------------

    def encode(self, nframes: Optional[int] = None) -> EncodedClip:
        count = nframes if nframes is not None else self.profile.nframes
        frames = [self.encode_frame(i) for i in range(count)]
        return EncodedClip(self.profile, frames)


def synthesize_clip(profile: ClipProfile, seed: int = 0,
                    nframes: Optional[int] = None,
                    alf: bool = True) -> EncodedClip:
    """Convenience wrapper: encode *profile* deterministically."""
    return MpegEncoder(profile, seed=seed, alf=alf).encode(nframes)
