"""Synthetic MPEG subsystem: bitstream, clips, encoder, decoder, router."""

from .bitstream import BitReader, BitWriter
from .clips import (
    B_FRAME,
    CANYON,
    FLAG_FIRST_PACKET,
    FLAG_LAST_PACKET,
    FLOWER,
    FRAME_TYPE_NAMES,
    I_FRAME,
    NEPTUNE,
    P_FRAME,
    PACKET_HEADER_SIZE,
    PAPER_CLIPS,
    REDS_NIGHTMARE,
    ClipProfile,
    EncodedClip,
    EncodedFrame,
    MpegEncoder,
    clip_by_name,
    synthesize_clip,
)
from .cost import decode_cost_us, display_cost_us, linux_frame_handoff_us
from .decoder import (
    DecodedFrame,
    MpegDecodeError,
    MpegDecoder,
    PacketDecodeResult,
    peek_packet_header,
)
from .router import PA_FRAME_SKIP, PA_VIDEO_PROFILE, MpegRouter, MpegStage

__all__ = [
    "BitReader", "BitWriter",
    "ClipProfile", "EncodedClip", "EncodedFrame", "MpegEncoder",
    "synthesize_clip", "clip_by_name",
    "FLOWER", "NEPTUNE", "REDS_NIGHTMARE", "CANYON", "PAPER_CLIPS",
    "I_FRAME", "P_FRAME", "B_FRAME", "FRAME_TYPE_NAMES",
    "FLAG_FIRST_PACKET", "FLAG_LAST_PACKET", "PACKET_HEADER_SIZE",
    "decode_cost_us", "display_cost_us", "linux_frame_handoff_us",
    "MpegDecoder", "DecodedFrame", "PacketDecodeResult", "MpegDecodeError",
    "peek_packet_header",
    "MpegRouter", "MpegStage", "PA_VIDEO_PROFILE", "PA_FRAME_SKIP",
]
