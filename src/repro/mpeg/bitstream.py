"""Bit-level I/O for the synthetic MPEG codec.

The real Berkeley decoder reads the stream 32 bits at a time — the
property Section 4.1 exploits when fusing the UDP checksum into MPEG's
data read.  These classes give the synthetic codec the same shape: the
encoder writes macroblock records bit by bit, the decoder reads every bit
back, and both therefore actually touch all the data they claim to.
"""

from __future__ import annotations


class BitWriter:
    """Append-only bit stream writer (MSB first)."""

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._bitpos = 0  # bits used in the final byte

    def write(self, value: int, nbits: int) -> None:
        """Append the low *nbits* of *value*."""
        if nbits < 0 or nbits > 64:
            raise ValueError(f"bad field width {nbits}")
        if value < 0 or (nbits < 64 and value >> nbits):
            raise ValueError(f"value {value} does not fit in {nbits} bits")
        for shift in range(nbits - 1, -1, -1):
            bit = (value >> shift) & 1
            if self._bitpos == 0:
                self._buffer.append(0)
            self._buffer[-1] |= bit << (7 - self._bitpos)
            self._bitpos = (self._bitpos + 1) % 8

    def write_bytes(self, data: bytes) -> None:
        for byte in data:
            self.write(byte, 8)

    def align(self) -> None:
        """Pad with zero bits to the next byte boundary."""
        if self._bitpos:
            self.write(0, 8 - self._bitpos)

    @property
    def bit_length(self) -> int:
        total = len(self._buffer) * 8
        if self._bitpos:
            total -= 8 - self._bitpos
        return total

    def getvalue(self) -> bytes:
        return bytes(self._buffer)


class BitReader:
    """Sequential bit stream reader (MSB first)."""

    def __init__(self, data: bytes):
        self._data = data
        self._pos = 0  # absolute bit position

    def read(self, nbits: int) -> int:
        """Read *nbits* as an unsigned integer."""
        if nbits < 0 or nbits > 64:
            raise ValueError(f"bad field width {nbits}")
        if self._pos + nbits > len(self._data) * 8:
            raise EOFError(
                f"bitstream exhausted at bit {self._pos} (+{nbits})")
        value = 0
        pos = self._pos
        for _ in range(nbits):
            byte = self._data[pos >> 3]
            value = (value << 1) | ((byte >> (7 - (pos & 7))) & 1)
            pos += 1
        self._pos = pos
        return value

    def skip(self, nbits: int) -> None:
        if self._pos + nbits > len(self._data) * 8:
            raise EOFError("cannot skip past end of bitstream")
        self._pos += nbits

    def align(self) -> None:
        self._pos = (self._pos + 7) & ~7

    @property
    def bits_remaining(self) -> int:
        return len(self._data) * 8 - self._pos

    @property
    def bit_position(self) -> int:
        return self._pos
