"""The MPEG router: decompression as a path stage (Figure 9).

"The MPEG router accepts messages from MFLOW, applies the MPEG
decompression algorithm to them, and sends the decoded images to the
DISPLAY router."

Each video path gets its own decoder instance (per-path state is exactly
what stages are for).  The stage charges the decode cost of each packet's
macroblocks to the message's cost account, and forwards completed frames
to the DISPLAY stage, passing the original message along as the
``account`` so display costs land on the same traversal.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..core.attributes import Attrs
from ..core.graph import register_router
from ..core.message import Msg
from ..core.router import DemuxResult, NextHop, Router, Service
from ..core.stage import BWD, FWD, Stage, forward
from ..net.common import charge
from .clips import ClipProfile
from .decoder import MpegDecodeError, MpegDecoder

#: Path attribute carrying the video's :class:`ClipProfile` (an invariant
#: of the stream the path was created for).
PA_VIDEO_PROFILE = "PA_VIDEO_PROFILE"

#: Optional path attribute: display only every Nth frame (reduced-quality
#: playback, Section 4.4).  1 or absent = full quality.
PA_FRAME_SKIP = "PA_FRAME_SKIP"


class MpegStage(Stage):
    """MPEG's contribution to a video path."""

    def __init__(self, router: "MpegRouter", enter_service, exit_service):
        super().__init__(router, enter_service, exit_service)
        self.decoder: Optional[MpegDecoder] = None
        self.skip_modulus = 1
        self.frames_skipped = 0
        self.decode_errors = 0
        self.set_deliver(FWD, self._down)
        self.set_deliver(BWD, self._decode)

    def establish(self, attrs: Attrs) -> None:
        profile = attrs.get(PA_VIDEO_PROFILE)
        if not isinstance(profile, ClipProfile):
            raise ValueError(
                "MPEG path requires the PA_VIDEO_PROFILE invariant")
        self.decoder = MpegDecoder(profile)
        self.skip_modulus = max(1, int(attrs.get(PA_FRAME_SKIP, 1)))

    # -- toward the network (control traffic passes through) ---------------------

    def _down(self, iface, msg, direction: int, **kwargs):
        return forward(iface, msg, direction, **kwargs)

    # -- decode -----------------------------------------------------------------------

    def _decode(self, iface, msg: Msg, direction: int, **kwargs):
        router: MpegRouter = self.router  # type: ignore[assignment]
        assert self.decoder is not None, "stage used before establish"
        try:
            result = self.decoder.feed(msg.to_bytes())
        except MpegDecodeError as exc:
            self.decode_errors += 1
            self.note_drop(msg, f"MPEG bitstream error: {exc}", "corrupt")
            return None
        charge(msg, result.cost_us)
        router.packets_decoded += 1
        frame = result.frame
        if frame is None:
            return None  # mid-frame packet: absorbed
        if not frame.complete:
            self.note_drop(msg, f"frame {frame.number} damaged by loss",
                           "damaged_frame")
            return None
        if frame.number % self.skip_modulus != 0:
            # Reduced-quality playback without early discard: the decode
            # cost above was already paid — the waste Section 4.4's early
            # drop avoids.
            self.frames_skipped += 1
            return None
        router.frames_produced += 1
        return forward(iface, frame, direction, account=msg, **kwargs)


@register_router("MpegRouter")
class MpegRouter(Router):
    """The MPEG decompression router."""

    SERVICES = ("up:net", "<down:net")

    def __init__(self, name: str):
        super().__init__(name)
        self.packets_decoded = 0
        self.frames_produced = 0

    def create_stage(self, enter_service: int, attrs: Attrs
                     ) -> Tuple[Optional[Stage], Optional[NextHop]]:
        enter = self.services[enter_service] if enter_service >= 0 else None
        down = self.service("down")
        if len(down.links) != 1:
            return None, None
        peer_router, peer_service = down.links[0].peer_of(down)
        stage = MpegStage(self, enter, down)
        return stage, NextHop(peer_router, peer_service, attrs)

    def demux(self, msg: Msg, service: Optional[Service],
              offset: int = 0) -> DemuxResult:
        # Classification never needs to reach MPEG: UDP/MFLOW already
        # identify the video path.  Anything that lands here is noise.
        return DemuxResult.drop(f"{self.name}: unexpected demux")
