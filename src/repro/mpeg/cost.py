"""The decode/display CPU cost model.

Section 4.4: "our experiments show that there is a good correlation
between the average size of a frame (in bits) and the average amount of
CPU time it takes to decode a frame.  Naturally, the model that translates
average frame size into CPU processing time is parameterized by the speed
of the CPU, the memory system, and the graphics card."

We use exactly that model:

    decode_us(frame)  = a * macroblocks + b * bits
    display_us(frame) = c * pixels          (dither + blit)

with (a, b, c) fitted once against the paper's Table 1 Scout column (see
EXPERIMENTS.md).  The linear-in-bits term is what makes frame-size jitter
translate into decode-time jitter, driving the Section 4.2/4.3 queueing
and scheduling behaviour.
"""

from __future__ import annotations

from .. import params


def decode_cost_us(bits: int, macroblocks: int,
                   us_per_bit: float = params.DECODE_US_PER_BIT,
                   us_per_mb: float = params.DECODE_US_PER_MACROBLOCK) -> float:
    """CPU time to decode a frame (or a packet's worth of macroblocks)."""
    if bits < 0 or macroblocks < 0:
        raise ValueError("bits and macroblocks must be non-negative")
    return us_per_mb * macroblocks + us_per_bit * bits


def display_cost_us(pixels: int,
                    us_per_pixel: float = params.DISPLAY_US_PER_PIXEL) -> float:
    """CPU time to dither and display a decoded frame."""
    if pixels < 0:
        raise ValueError("pixels must be non-negative")
    return us_per_pixel * pixels


def linux_frame_handoff_us(pixels: int) -> float:
    """The Linux baseline's extra per-frame cost: copying the dithered
    frame to the window system plus the process switches around it."""
    copy = (pixels * params.LINUX_DISPLAY_BYTES_PER_PIXEL
            * params.LINUX_FRAME_COPY_US_PER_BYTE)
    switches = params.LINUX_DISPLAY_CSWITCHES * params.LINUX_CSWITCH_US
    return copy + switches
