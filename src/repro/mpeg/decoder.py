"""The MPEG decoder: consumes ALF packets, produces decoded frames.

Thanks to ALF "the MPEG decoder does not have to maintain complex state
across packet boundaries": each packet carries an integral number of
macroblocks and self-describes (frame number, type, count, bit length),
so the decoder's only cross-packet state is which frame it is currently
accumulating.  Losing a packet damages exactly one frame.

The decoder really reads the bitstream — every macroblock record is
parsed bit by bit and validated — and reports the per-packet decode cost
from the cost model so the executing thread can charge the CPU.
"""

from __future__ import annotations

import struct
from typing import Optional

from .bitstream import BitReader
from .clips import (
    FLAG_LAST_PACKET,
    FRAME_TYPE_NAMES,
    MB_INDEX_BITS,
    MB_SIZE_BITS,
    PACKET_HEADER_FORMAT,
    PACKET_HEADER_SIZE,
    PACKET_MAGIC,
    ClipProfile,
)
from .cost import decode_cost_us, display_cost_us


class DecodedFrame:
    """A fully decoded frame ready for display."""

    __slots__ = ("number", "ftype", "bits", "n_mb", "width", "height",
                 "decode_cost_us", "display_cost_us", "complete", "deadline")

    def __init__(self, number: int, ftype: int, bits: int, n_mb: int,
                 width: int, height: int, complete: bool = True):
        self.number = number
        self.ftype = ftype
        self.bits = bits
        self.n_mb = n_mb
        self.width = width
        self.height = height
        self.complete = complete
        self.decode_cost_us = decode_cost_us(bits, n_mb)
        self.display_cost_us = display_cost_us(width * height)
        #: Display deadline in virtual microseconds, set by DISPLAY.
        self.deadline: Optional[float] = None

    @property
    def pixels(self) -> int:
        return self.width * self.height

    def __repr__(self) -> str:
        state = "" if self.complete else " DAMAGED"
        return (f"<DecodedFrame #{self.number} "
                f"{FRAME_TYPE_NAMES[self.ftype]} {self.bits}b{state}>")


class PacketDecodeResult:
    """What one packet contributed."""

    __slots__ = ("cost_us", "frame", "damaged_frame")

    def __init__(self, cost_us: float, frame: Optional[DecodedFrame] = None,
                 damaged_frame: Optional[int] = None):
        self.cost_us = cost_us
        self.frame = frame
        self.damaged_frame = damaged_frame


class MpegDecodeError(ValueError):
    """The bitstream is malformed (bad magic, inconsistent lengths)."""


class MpegDecoder:
    """Stateful per-path decoder.

    Parameters
    ----------
    profile:
        The clip's geometry — an invariant of the video path, fixed at
        path creation.
    """

    def __init__(self, profile: ClipProfile):
        self.profile = profile
        self._current_frame: Optional[int] = None
        self._current_type = 0
        self._accum_bits = 0
        self._accum_mb = 0
        self._next_packet_index = 0
        self._lost_packets_in_frame = False
        #: Non-ALF packetization forces the decoder to buffer partial
        #: frames — "the need for undesirable queueing between MPEG and
        #: MFLOW" that ALF obviates.  ALF streams never use this.
        self._stream_buffer = bytearray()
        # statistics
        self.frames_decoded = 0
        self.frames_damaged = 0
        self.packets_decoded = 0
        self.bits_decoded = 0
        self.peak_buffered_bytes = 0

    # -- packet consumption ------------------------------------------------------

    def feed(self, payload: bytes) -> PacketDecodeResult:
        """Decode one MPEG packet payload.

        Returns the CPU cost of this packet's macroblocks, plus the
        completed frame when this packet finished one.
        """
        if len(payload) < PACKET_HEADER_SIZE:
            raise MpegDecodeError(
                f"packet shorter than header ({len(payload)} bytes)")
        magic, frame_no, ftype, pkt_index, flags, n_mb, payload_bits = \
            struct.unpack(PACKET_HEADER_FORMAT, payload[:PACKET_HEADER_SIZE])
        if magic != PACKET_MAGIC:
            raise MpegDecodeError(f"bad packet magic 0x{magic:02x}")
        body = payload[PACKET_HEADER_SIZE:]
        if payload_bits > len(body) * 8:
            raise MpegDecodeError(
                f"declared {payload_bits} bits but only {len(body) * 8} present")

        damaged: Optional[int] = None
        if self._current_frame is not None and frame_no != self._current_frame:
            # A new frame arrived while the old one was incomplete.
            damaged = self._abandon_current()
        if self._current_frame is None:
            self._current_frame = frame_no
            self._current_type = ftype
            self._accum_bits = 0
            self._accum_mb = 0
            self._next_packet_index = 0
            self._lost_packets_in_frame = False
        if pkt_index != self._next_packet_index:
            self._lost_packets_in_frame = True
        self._next_packet_index = pkt_index + 1

        if n_mb == 0 and not (flags & FLAG_LAST_PACKET):
            # Non-ALF stream packet: macroblocks straddle packets, so
            # nothing can be decoded yet — buffer until the frame's last
            # packet arrives (cost: one touch pass over the bytes).
            self._stream_buffer += body
            self.peak_buffered_bytes = max(self.peak_buffered_bytes,
                                           len(self._stream_buffer))
            self.packets_decoded += 1
            return PacketDecodeResult(len(body) * 0.004, damaged_frame=damaged)
        if self._stream_buffer:
            body = bytes(self._stream_buffer) + body
            self._stream_buffer = bytearray()

        bits_read = self._parse_macroblocks(body, n_mb)
        self.packets_decoded += 1
        self.bits_decoded += bits_read
        self._accum_bits += bits_read
        self._accum_mb += n_mb
        cost = decode_cost_us(bits_read, n_mb)

        frame: Optional[DecodedFrame] = None
        if flags & FLAG_LAST_PACKET:
            complete = not self._lost_packets_in_frame
            frame = DecodedFrame(frame_no, ftype, self._accum_bits,
                                 self._accum_mb, self.profile.width,
                                 self.profile.height, complete=complete)
            if complete:
                self.frames_decoded += 1
            else:
                self.frames_damaged += 1
            self._current_frame = None
        return PacketDecodeResult(cost, frame=frame, damaged_frame=damaged)

    def _abandon_current(self) -> Optional[int]:
        abandoned = self._current_frame
        self._current_frame = None
        self._stream_buffer = bytearray()
        if abandoned is not None:
            self.frames_damaged += 1
        return abandoned

    def _parse_macroblocks(self, body: bytes, n_mb: int) -> int:
        """Read every macroblock record; returns total bits consumed."""
        reader = BitReader(body)
        total = 0
        previous_index = -1
        for _ in range(n_mb):
            index = reader.read(MB_INDEX_BITS)
            size = reader.read(MB_SIZE_BITS)
            if index <= previous_index:
                raise MpegDecodeError(
                    f"macroblock indices not increasing ({index} after "
                    f"{previous_index})")
            previous_index = index
            remaining = size
            while remaining > 0:
                chunk = min(16, remaining)
                reader.read(chunk)  # the pseudo-coefficients
                remaining -= chunk
            reader.align()  # records are byte-aligned by the encoder
            total += MB_INDEX_BITS + MB_SIZE_BITS + size
        return total

    def reset(self) -> None:
        """Forget any partially accumulated frame (stream restart)."""
        self._current_frame = None
        self._lost_packets_in_frame = False
        self._stream_buffer = bytearray()


def peek_packet_header(payload: bytes):
    """Parse just the ALF header of an MPEG packet (classifier use).

    Returns ``(frame_no, ftype, flags)`` or ``None`` when the payload is
    not an MPEG packet.  This is what lets the kernel drop packets of
    skipped frames "as soon as they arrive at the network adapter"
    (Section 4.4) — the decision needs only the first few payload bytes.
    """
    if len(payload) < PACKET_HEADER_SIZE:
        return None
    magic, frame_no, ftype, _index, flags, _n_mb, _bits = struct.unpack(
        PACKET_HEADER_FORMAT, payload[:PACKET_HEADER_SIZE])
    if magic != PACKET_MAGIC:
        return None
    return frame_no, ftype, flags
