#!/usr/bin/env python
"""Early segregation under hostile load (the Table 2 scenario, live).

A video plays while a remote host runs ``ping -f`` at the machine.  On
Scout, the classifier segregates the flood into the low-priority ICMP
path at interrupt time, so the flood starves *itself* (ping -f sends on
replies, and replies only happen when the video is idle).  On the
Linux-like baseline, echo service happens at interrupt level and eats the
decoder alive.

Run:  python examples/loaded_system.py
"""

from repro.api import NEPTUNE, POLICY_RR, Testbed, synthesize_clip

FRAMES = 200


def run(kernel_name: str) -> None:
    testbed = Testbed(seed=7)
    clip = synthesize_clip(NEPTUNE, seed=7, nframes=FRAMES)
    source = testbed.add_video_source(clip, dst_port=6100)
    flooder = testbed.add_flooder()
    if kernel_name == "scout":
        kernel = testbed.build_scout(rate_limited_display=False)
        session = kernel.start_video(NEPTUNE, (str(source.ip), 7200),
                                     local_port=6100, policy=POLICY_RR)
    else:
        kernel = testbed.build_linux(rate_limited_display=False)
        session = kernel.start_video(NEPTUNE, (str(source.ip), 7200),
                                     local_port=6100)
    testbed.start_all()
    testbed.run_until_sources_done()
    elapsed = testbed.world.now / 1e6
    print(f"{kernel_name:>6}: {session.achieved_fps():5.1f} fps under "
          f"flood | flood sent {flooder.requests_sent} "
          f"({flooder.requests_sent / elapsed:.0f}/s), "
          f"answered {flooder.replies_received} "
          f"| irq time {testbed.world.cpu.interrupt_us / 1e6:.2f}s")


def main() -> None:
    print(f"Neptune ({FRAMES} frames) at max decode rate, "
          "with ping -f running:")
    run("scout")
    run("linux")
    print("\nThe asymmetry is emergent: ping -f sends a new request per "
          "reply.\nScout's ICMP path runs below the video's priority, so "
          "the flood\nthrottles itself; the baseline answers at interrupt "
          "level and gets\nflooded at full wire speed, stealing the "
          "decoder's CPU.")


if __name__ == "__main__":
    main()
