#!/usr/bin/env python
"""Admission control on a live kernel (Section 4.4, end to end).

Phase 1: the system *measures itself* — each clip plays briefly, the
paths' cycle accounting yields per-frame CPU costs, and the frame-size →
CPU model is fitted from those measurements ("the path execution timings
are used to derive the model parameters").

Phase 2: a kernel boots with a memory admission hook, streams are
admitted against the fitted CPU model, and a stream that does not fit at
full rate is started at reduced quality with its skipped frames dropped
at the network adapter.

Run:  python examples/admission_control.py   (takes ~1 min)
"""

from repro.api import (
    CANYON,
    FLOWER,
    NEPTUNE,
    PAPER_CLIPS,
    AdmissionError,
    CpuAdmission,
    FrameCostModel,
    MemoryAdmission,
    Testbed,
    synthesize_clip,
)


def measure_model() -> FrameCostModel:
    print("phase 1: measuring each clip on the running system")
    model = FrameCostModel()
    for profile in PAPER_CLIPS:
        testbed = Testbed(seed=3)
        clip = synthesize_clip(profile, seed=3, nframes=60)
        source = testbed.add_video_source(clip, dst_port=6100)
        kernel = testbed.build_scout(rate_limited_display=False)
        session = kernel.start_video(profile, (str(source.ip), 7200),
                                     local_port=6100)
        testbed.start_all()
        testbed.run_until_sources_done()
        frames = session.path.stage_of("MPEG").decoder.frames_decoded
        model.sample_from_path(session.path, frames)
        bits, _px, micros = model._samples[-1]
        print(f"  {profile.name:<15} {bits:>8.0f} bits/frame -> "
              f"{micros:>8.1f} us/frame")
    model.fit()
    print(f"  correlation(bits, us) = {model.correlation():.3f}\n")
    return model


def run_admitted_system(model: FrameCostModel) -> None:
    print("phase 2: admitting streams against the fitted model")
    cpu_control = CpuAdmission(model, headroom=0.95)
    mem_control = MemoryAdmission(system_budget=2_000_000,
                                  per_path_grant=400_000)
    testbed = Testbed(seed=4)
    kernel = testbed.build_scout(rate_limited_display=True,
                                 admission=mem_control)

    def admit_and_start(profile, fps, port):
        try:
            cpu_control.admit(profile, fps)
            skip = 1
        except AdmissionError:
            skip = cpu_control.suggest_skip(profile, fps)
            if skip is None:
                print(f"  {profile.name}@{fps:.0f}fps: REJECTED "
                      f"(no reduced-quality rate fits)")
                return None
            cpu_control.admit(profile, fps, skip=skip)
            print(f"  {profile.name}@{fps:.0f}fps: full rate denied, "
                  f"admitted at 1/{skip} quality (early drop armed)")
        clip = synthesize_clip(profile, seed=4,
                               nframes=min(profile.nframes, 150))
        source = testbed.add_video_source(clip, dst_port=port)
        session = kernel.start_video(profile, (str(source.ip), 7200),
                                     local_port=port, fps=fps, skip=skip,
                                     prebuffer=4)
        session.sink.expected_frames = len(clip.frames) // skip \
            + (1 if len(clip.frames) % skip else 0)
        source.start()
        if skip == 1:
            print(f"  {profile.name}@{fps:.0f}fps: admitted "
                  f"({cpu_control.committed_utilization:.0%} CPU committed, "
                  f"{mem_control.committed} B memory)")
        return session

    sessions = [s for s in (
        admit_and_start(NEPTUNE, 30.0, 6100),
        admit_and_start(CANYON, 10.0, 6200),
        admit_and_start(CANYON, 10.0, 6201),
        admit_and_start(FLOWER, 30.0, 6300),
    ) if s is not None]

    testbed.run_seconds(7.0)
    print("\nresults after 7 virtual seconds:")
    for session in sessions:
        print(f"  {session.profile.name:<15} presented "
              f"{session.frames_presented:>4}, "
              f"missed {session.missed_deadlines}")
    print(f"  adapter-level early drops: {kernel.early_drops}")
    print(f"  CPU utilization: {testbed.world.cpu.utilization():.0%}")


def main() -> None:
    model = measure_model()
    run_admitted_system(model)


if __name__ == "__main__":
    main()
