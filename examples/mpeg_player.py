#!/usr/bin/env python
"""The paper's demonstration application, end to end (Section 4).

Boots the Figure 9 Scout configuration (DISPLAY / MPEG / MFLOW / SHELL /
UDP / IP / ETH), starts the SHELL's command path, then plays a video the
way the paper describes: a remote client sends an ``mpeg_decode`` command
over UDP, SHELL maps it into a ``pathCreate`` on DISPLAY, and the video
source streams the clip under MFLOW flow control while the path's thread
decodes under EDF scheduling.

Run:  python examples/mpeg_player.py
"""

from repro.api import NEPTUNE, Testbed, synthesize_clip


def main() -> None:
    testbed = Testbed(seed=42)

    # A remote host that will stream Neptune at us once asked to.
    clip = synthesize_clip(NEPTUNE, seed=42, nframes=240)
    source = testbed.add_video_source(clip, dst_port=6100,
                                      pace_fps=30.0, lead_frames=8)

    # A second remote host that speaks to SHELL.
    client = testbed.add_command_client(dst_port=5000)

    kernel = testbed.build_scout(rate_limited_display=True)
    kernel.start_shell(port=5000)
    print("Scout booted:", sorted(kernel.graph.routers))
    print("boot-time paths: shell(+icmp, +frag reassembly)")

    # The client asks SHELL to start decoding.  SHELL assumes the video
    # source address is the command's source address unless told
    # otherwise, so we name the source host explicitly.
    client.send_command(
        f"mpeg_decode ip={source.ip} port=7200 clip=Neptune fps=30")
    testbed.run_seconds(0.2)
    print("SHELL replied:", client.replies)

    # SHELL created the video path; find its session and point the source
    # at the allocated UDP port.
    session = kernel.sessions[-1]
    session.sink.expected_frames = len(clip.frames)
    print(f"video path: {' -> '.join(session.path.routers())}")
    print(f"  transforms applied: "
          f"{session.path.attrs.get('_transforms_applied', ())}")
    source.dst_port = session.local_port
    source.start()

    testbed.run_seconds(len(clip.frames) / 30.0 + 2.0)

    print(f"\nplayback finished at t={testbed.world.now / 1e6:.1f}s virtual")
    print(f"  frames presented:  {session.frames_presented}"
          f" / {len(clip.frames)}")
    print(f"  missed deadlines:  {session.missed_deadlines}")
    print(f"  measured rate:     {session.achieved_fps():.1f} fps")
    print(f"  source RTT est.:   {source.avg_rtt_us():.0f} us")
    mflow = session.path.stage_of("MFLOW")
    print(f"  window adverts:    {mflow.window_advs_sent}")
    print(f"  path CPU charged:  "
          f"{session.path.stats.cycles / 300 / 1e6:.2f} s")
    print(f"  kernel stats:      {kernel.stats()}")


if __name__ == "__main__":
    main()
