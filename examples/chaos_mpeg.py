#!/usr/bin/env python
"""Chaos playback: an MPEG path surviving a hostile wire and a hung stage.

Boots the Figure 9 Scout configuration, streams a clip across a wire
misbehaving per a seeded fault profile (drops, duplicates, reordering),
and arms the full self-healing stack:

* a :class:`~repro.faults.PathWatchdog` on the video path — mid-stream
  the MFLOW stage is quietly stall-faulted, the watchdog notices the flat
  progress signature, tears the path down and rebuilds it from its
  attributes;
* a :class:`~repro.faults.DegradationGovernor` — under queue pressure it
  turns early discard up (reduced-quality playback, Section 4.4), back
  down when the path is healthy again;
* MFLOW's ordered-but-unreliable delivery plus the source's window probe
  soak up the wire faults.

Run:  python examples/chaos_mpeg.py
"""

from repro.api import (
    NEPTUNE,
    DegradationGovernor,
    FaultyLink,
    PathBuilder,
    PathWatchdog,
    StageFault,
    StageFaultInjector,
    Testbed,
    params,
    profile,
    synthesize_clip,
)

SEED = 7
STALL_AT_US = 2_000_000.0


def main() -> None:
    testbed = Testbed(seed=SEED)
    clip = synthesize_clip(NEPTUNE, seed=SEED, nframes=240)
    source = testbed.add_video_source(
        clip, dst_port=6100, pace_fps=NEPTUNE.fps,
        probe_timeout_us=params.MFLOW_PROBE_TIMEOUT_US)
    kernel = testbed.build_scout(rate_limited_display=False)
    remote = (str(source.ip), source.src_port)
    session = kernel.start_video(NEPTUNE, remote, local_port=6100)
    print(f"video path: {' -> '.join(session.path.routers())}")

    # -- the chaos: a faulty wire and a stage that will hang ------------
    plan = profile("drop10_reorder", seed=SEED)
    link = FaultyLink(testbed.segment, plan).install()
    injector = StageFaultInjector(testbed.world.engine)
    injector.apply(session.path, StageFault(router="MFLOW", mode="stall",
                                            start_us=STALL_AT_US))
    print(f"wire faults: {plan.name} (seed {plan.seed}); "
          f"MFLOW stalls at t={STALL_AT_US / 1e6:.0f}s")

    # -- the healing: watchdog + degradation governor -------------------
    sessions = [session]

    def rebuild():
        attrs = kernel.build_video_attrs(NEPTUNE, remote, local_port=6100)
        path = (PathBuilder(kernel.display,
                            transforms=kernel.transforms,
                            admission=kernel.admission)
                .invariants(attrs)
                .build())
        sessions.append(kernel._attach_video_path(path))
        governor.path = path  # the governor follows the live path
        return path

    watchdog = PathWatchdog(testbed.world.engine, session.path,
                            rebuild).start()
    governor = DegradationGovernor(testbed.world.engine, kernel,
                                   session.path).start()

    testbed.start_all()
    testbed.run_until_sources_done(max_seconds=60.0)
    watchdog.stop()
    governor.stop()
    link.uninstall()

    print(f"\nplayback finished at t={testbed.world.now / 1e6:.1f}s virtual")
    print(f"  wire: {link.counters()}")
    for event in watchdog.events:
        kind = event["type"]
        stamp = event["time_us"] / 1e6
        extra = {k: v for k, v in event.items()
                 if k not in ("type", "time_us")}
        print(f"  t={stamp:6.2f}s  watchdog {kind}: {extra}")
    for event in governor.events:
        print(f"  t={event['time_us'] / 1e6:6.2f}s  governor "
              f"{event['type']} -> skip {event['skip']}")
    presented = sum(s.frames_presented for s in sessions)
    print(f"  frames presented:  {presented} / {len(clip.frames)} "
          f"(across {len(sessions)} path incarnation(s))")
    print(f"  stalls detected:   {watchdog.stalls_detected}, "
          f"rebuilds: {watchdog.rebuilds}")
    if watchdog.last_recovery_latency_us is not None:
        print(f"  recovery latency:  "
              f"{watchdog.last_recovery_latency_us / 1000:.0f} ms")
    print(f"  window probes:     {source.window_probes}")
    print(f"  source finished:   {source.done}")


if __name__ == "__main__":
    main()
