#!/usr/bin/env python
"""Quickstart: build a router graph, create a path, move a message.

This walks the core abstractions of *Making Paths Explicit in the Scout
Operating System* in ~80 lines: a spec-file router graph, incremental
path creation from invariants, bidirectional traversal, and the packet
classifier.

Run:  python examples/quickstart.py
"""

from repro.api import (
    BWD,
    FWD,
    EthAddr,
    IpAddr,
    Msg,
    PA_LOCAL_PORT,
    PA_NET_PARTICIPANTS,
    PathBuilder,
    Scout,
    build_graph,
    build_udp_frame,
    classify,
    parse_frame,
)

# ---------------------------------------------------------------------------
# 1. Configure a router graph with the paper's spec-file language.
#    (Figure 6's IP/ARP/ETH wiring, plus UDP and a TEST source/sink.)
# ---------------------------------------------------------------------------
SPEC = """
router ETH  { class = EthRouter;  service = {up:net};
              params = {mac: "02:00:00:00:00:01"}; }
router ARP  { class = ArpRouter;  service = {resolver:nsProvider, <down:net}; }
router IP   { class = IpRouter;   service = {up:net, <down:net, <res:nsClient};
              params = {addr: "10.0.0.1"}; }
router UDP  { class = UdpRouter;  service = {up:net, <down:net}; }
router TEST { class = TestRouter; service = {<down:net}; }

connect IP.down  ETH.up;
connect IP.res   ARP.resolver;
connect ARP.down ETH.up;
connect UDP.down IP.up;
connect TEST.down UDP.up;
"""


def main() -> None:
    graph = build_graph(SPEC)
    print("router graph booted:", sorted(graph.routers))

    # The ARP table would be populated by the wire; preload the peer.
    graph.router("ARP").add_entry("10.0.0.2", "02:00:00:00:00:02")

    # -----------------------------------------------------------------------
    # 2. Create a path from invariants.  The builder's attributes say
    #    *who* we talk to; each router freezes the routing decisions those
    #    invariants allow (IP checks the peer is on the local network,
    #    resolves its MAC through ARP's resolver service, and so on).
    # -----------------------------------------------------------------------
    path = (PathBuilder(graph.router("TEST"))
            .invariant(PA_NET_PARTICIPANTS, ("10.0.0.2", 7000))
            .invariant(PA_LOCAL_PORT, 6100)
            .build())
    print(f"created {path!r}")
    print(f"  stages: {' -> '.join(path.routers())}")
    print(f"  modeled footprint: {path.modeled_size()} bytes "
          f"(paper: ~300 + ~150/stage)")

    # -----------------------------------------------------------------------
    # 3. Send: deliver a message in the FWD direction.  Each stage pushes
    #    its header; the ETH stage would hand the frame to the adapter —
    #    here we intercept it to show the result.
    # -----------------------------------------------------------------------
    wire = []
    graph.router("ETH").transmit = lambda msg: wire.append(msg.to_bytes())
    path.deliver(Msg(b"hello, scout"), FWD)
    parsed = parse_frame(wire[0])
    print(f"sent frame: {parsed.eth} / {parsed.ip} / {parsed.udp} "
          f"payload={parsed.payload!r}")

    # -----------------------------------------------------------------------
    # 4. Receive: classify an incoming frame to a path (the demux chain:
    #    ETH by ethertype, IP by protocol, UDP by port), then traverse the
    #    path in the BWD direction; each stage pops its header.
    # -----------------------------------------------------------------------
    frame = build_udp_frame(EthAddr("02:00:00:00:00:02"),
                            EthAddr("02:00:00:00:00:01"),
                            IpAddr("10.0.0.2"), IpAddr("10.0.0.1"),
                            7000, 6100, b"welcome back")
    msg = Msg(frame)
    result = classify(graph.router("ETH"), msg)
    found = result.path
    print(f"classified to path #{found.pid} via {result.source} "
          f"(same path: {found is path})")
    found.deliver(msg, BWD)
    received = graph.router("TEST").received[0]
    print(f"TEST sink received: {received.to_bytes()!r}")

    # -----------------------------------------------------------------------
    # 5. The same flow, kernel-hosted.  Scout() boots the full machine on
    #    a virtual-time world; the context manager is the supported
    #    lifecycle (construction opens it, leaving the block closes it).
    #    Swapping backend="socket", executor="asyncio" here would serve
    #    real UDP loopback traffic instead — see wallclock_socket.py.
    # -----------------------------------------------------------------------
    with Scout(seed=7, udp_sink=True, display=False) as scout:
        scout.add_peer("10.0.0.2", "02:00:00:00:00:02")
        scout.kernel.start_udp_sink(6100, ("10.0.0.2", 7000))
        scout.kernel.rx_burst([frame])
        scout.world.run_until_idle()
        delivered = scout.kernel.test.received[0]
        print(f"kernel-hosted sink delivered: {delivered.to_bytes()!r}")


if __name__ == "__main__":
    main()
