#!/usr/bin/env python
"""Multi-hop forwarding: build a 3-hop topology, discover it, provision
a path across it, and watch path-MTU discovery converge.

Two hosts, two routers, three links — the middle one constricted to a
600-byte MTU between 1500-byte edges:

    sender --1500-- r1 --600-- r2 --1500-- receiver

The discovery control plane (``Topology``) probes the simulated network
into a device/link inventory, computes the hop chain, installs routes
and gateways, and (with PMTUD on) probes the path MTU so the sender
resegments instead of letting the routers fragment in flight.

Run:  python examples/forwarding_topology.py
"""

from repro.api import SimWorld, Topology

BLOB = bytes((i * 31 + 7) % 256 for i in range(20_000))


def main() -> None:
    world = SimWorld(seed=11)
    topo = Topology(world)

    # -----------------------------------------------------------------------
    # 1. Declare links, hosts and routers.  Each router port joins one
    #    segment; the segment's MTU is the link MTU.
    # -----------------------------------------------------------------------
    topo.segment("L1", mtu=1500, bandwidth_mbps=100.0, latency_us=20.0)
    topo.segment("L2", mtu=600, bandwidth_mbps=100.0, latency_us=20.0)
    topo.segment("L3", mtu=1500, bandwidth_mbps=100.0, latency_us=20.0)
    topo.host("sender", "L1", "10.0.1.1")
    topo.host("receiver", "L3", "10.0.3.1")
    topo.router("r1", {"a": ("L1", "10.0.1.254"), "b": ("L2", "10.0.2.1")})
    topo.router("r2", {"a": ("L2", "10.0.2.254"), "b": ("L3", "10.0.3.254")})

    # -----------------------------------------------------------------------
    # 2. Discover: probe the world into a device/link inventory.
    # -----------------------------------------------------------------------
    inventory = topo.discover()
    print(inventory.render())
    chain = topo.hop_chain("sender", "receiver")
    print(f"hop chain: {' -> '.join(chain)}")
    print(f"min link MTU on chain: {inventory.min_mtu(chain)}\n")

    # -----------------------------------------------------------------------
    # 3. Provision: install /32 routes on every chain router (both
    #    directions), set host gateways, refresh ARP, open a transport
    #    path — then probe the path MTU with DF-bit echoes until the
    #    ICMP Fragmentation Needed feedback stops shrinking it.
    # -----------------------------------------------------------------------
    pp = topo.provision("sender", "receiver", remote_port=7000, pmtud=True)
    print(f"provisioned {' -> '.join(pp.chain)}; learned PMTU {pp.pmtu} "
          f"(MSS {pp.mss()} bytes)")

    # -----------------------------------------------------------------------
    # 4. Stream a blob.  The converged sender chops it at the learned
    #    MSS, so nothing fragments — not at the source, not at a hop.
    # -----------------------------------------------------------------------
    count = pp.send_stream(BLOB)
    world.run_for(5_000_000)
    r1 = topo.routers["r1"]
    print(f"sent {count} datagrams / {len(BLOB)} bytes")
    print(f"received byte-identical: {pp.received_bytes() == BLOB}")
    print(f"sender fragments: {pp.path.stage_of('IP').fragments_sent}, "
          f"r1 in-flight fragments: {r1.fwd.fragments_created}")
    print(f"r1 drop ledger: {r1.drop_ledger()}  "
          f"(the one DF discovery probe it refused)")


if __name__ == "__main__":
    main()
