#!/usr/bin/env python
"""Wall-clock edge: serve real UDP loopback traffic through a Scout kernel.

Everything in the other examples runs on simulated virtual time.  This
one crosses the wall-clock edge (DESIGN.md §18): the same kernel — same
router graph, same path machinery, same drop ledgers — is driven by the
asyncio executor, and frames arrive from an actual UDP socket on the
loopback interface instead of the simulated segment.

An external sender (a plain ``socket.socket`` below, standing in for a
remote load generator) blasts ETH/IP/UDP frames at the kernel's socket
device; the kernel classifies and delivers them, and at the end the
books reconcile exactly: accepted = delivered + dropped, with the
wall-clock bridge reporting how much virtual CPU the load cost per real
second.

Run:  python examples/wallclock_socket.py
"""

import asyncio
import socket

from repro.api import EthAddr, IpAddr, Scout, build_udp_frame

LOCAL_MAC = EthAddr("02:00:00:00:00:01")
LOCAL_IP = IpAddr("10.0.0.1")
REMOTE_MAC = EthAddr("02:00:00:00:00:02")
REMOTE_IP = IpAddr("10.0.0.2")
SINK_PORT = 6100
FRAMES = 50


def loopback_available() -> bool:
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        probe.bind(("127.0.0.1", 0))
        probe.close()
        return True
    except OSError:
        return False


async def main() -> None:
    async with Scout(seed=7, backend="socket", executor="asyncio") as scout:
        print("socket device bound:", scout.device.address)

        # The external load generator: any process that can sendto().
        sender = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sender.bind(("127.0.0.1", 0))

        # Teach the kernel its neighbour: ARP (IP -> MAC) plus the
        # socket device's MAC -> UDP address table for replies.
        scout.add_peer(REMOTE_IP, REMOTE_MAC, sender.getsockname())
        scout.kernel.start_udp_sink(SINK_PORT, (str(REMOTE_IP), 7000))

        drops = []
        scout.kernel.drop_hook = lambda msg, category: drops.append(category)

        for seq in range(FRAMES):
            frame = build_udp_frame(REMOTE_MAC, LOCAL_MAC,
                                    REMOTE_IP, LOCAL_IP,
                                    7000, SINK_PORT,
                                    b"wallclock-%06d" % seq)
            sender.sendto(frame, scout.device.address)

        # Pump arrivals into rx_burst until the books balance (or 5s).
        deadline = asyncio.get_running_loop().time() + 5.0
        while (len(scout.kernel.test.received) + len(drops)
               < scout.device.rx_frames
               or scout.device.rx_frames < FRAMES):
            if asyncio.get_running_loop().time() >= deadline:
                break
            await scout.serve(seconds=0.05)
        sender.close()

        delivered = len(scout.kernel.test.received)
        print(f"delivered {delivered}/{FRAMES} frames "
              f"({scout.kernel.test.bytes_received} payload bytes)")
        print(f"device: rx={scout.device.rx_frames} "
              f"tx={scout.device.tx_frames} "
              f"drops={scout.device.drop_ledger()}")
        print(f"admission drops: {drops}")
        assert scout.device.rx_frames == delivered + len(drops), \
            "books must reconcile: accepted = delivered + dropped"
        snap = scout.wallclock()
        print(f"wall-clock bridge: {snap['virtual_cpu_s'] * 1e6:.0f} "
              f"virtual CPU us over {snap['wall_s']:.3f} real seconds")
        print("books reconcile: accepted = delivered + dropped")


if __name__ == "__main__":
    if loopback_available():
        asyncio.run(main())
    else:
        print("loopback sockets unavailable; skipping wall-clock demo")
