#!/usr/bin/env python
"""The Figure 3 web-server graph: HTTP / TCP / IP / ETH and
HTTP / VFS / UFS / SCSI — every substrate implemented, no stubs.

Demonstrates three things from Section 2 of the paper:

1. **file paths** — "one per open file": each requested document gets a
   path whose UFS stage froze the inode lookup at creation, created with
   the sequential-access invariant (so UFS skips caching);
2. **connection paths** — "one per TCP connection": requests ride up the
   path, responses are turned around through the same stages;
3. **the local-knowledge limit** — a path to a peer that is not on the
   local network must stop at IP, because the route cannot be frozen
   ("the routing tables may change in the middle of the data transfer").

Run:  python examples/web_server.py
"""

from repro.api import (
    BWD,
    IPPROTO_TCP,
    PA_LOCAL_PORT,
    PA_NET_PARTICIPANTS,
    ArpRouter,
    EthAddr,
    EthRouter,
    HttpRouter,
    IpAddr,
    IpHeader,
    IpRouter,
    Msg,
    PathBuilder,
    RouterGraph,
    ScsiRouter,
    TcpHeader,
    TcpRouter,
    UfsRouter,
    VfsRouter,
)

SERVER_IP, SERVER_MAC = "10.0.0.1", "02:00:00:00:00:01"
CLIENT_IP, CLIENT_MAC = "10.0.0.9", "02:00:00:00:00:09"


def build_figure3_graph() -> RouterGraph:
    graph = RouterGraph()
    graph.add(HttpRouter("HTTP"))
    graph.add(TcpRouter("TCP"))
    graph.add(IpRouter("IP", addr=SERVER_IP))
    graph.add(ArpRouter("ARP"))
    graph.add(EthRouter("ETH", mac=SERVER_MAC))
    graph.add(VfsRouter("VFS"))
    graph.add(UfsRouter("UFS"))
    graph.add(ScsiRouter("SCSI", sectors=2048))
    graph.connect("HTTP.net", "TCP.up")
    graph.connect("HTTP.files", "VFS.up")
    graph.connect("TCP.down", "IP.up")
    graph.connect("IP.down", "ETH.up")
    graph.connect("IP.res", "ARP.resolver")
    graph.connect("ARP.down", "ETH.up")
    graph.connect("VFS.mounts", "UFS.up")
    graph.connect("UFS.disk", "SCSI.ops")
    graph.boot()
    return graph


def client_segment(graph: RouterGraph, seq: int, payload: bytes) -> Msg:
    """Forge the frame a client would put on the wire."""
    tcp = TcpHeader(51000, 80, seq=seq,
                    flags=TcpHeader.FLAG_ACK).pack(payload)
    ip = IpHeader(20 + len(tcp) + len(payload), 7, IPPROTO_TCP,
                  IpAddr(CLIENT_IP), graph.router("IP").addr).pack()
    eth = (EthAddr(SERVER_MAC).to_bytes() + EthAddr(CLIENT_MAC).to_bytes()
           + b"\x08\x00")
    return Msg(eth + ip + tcp + payload)


def main() -> None:
    graph = build_figure3_graph()
    print("Figure 3 graph booted:", sorted(graph.routers))

    # Populate the filesystem and the mount table.
    ufs = graph.router("UFS")
    ufs.fs.write_file("index.html", b"<html><h1>Scout paths!</h1></html>")
    ufs.fs.write_file("paper.html",
                      b"<html>" + b"OSDI 1996 " * 400 + b"</html>")
    graph.router("VFS").mount("/", "UFS")
    graph.router("ARP").add_entry(CLIENT_IP, CLIENT_MAC)
    print("documents:", ufs.fs.listdir())

    # A connection path for one client ("one per TCP connection").
    http = graph.router("HTTP")
    conn = (PathBuilder(http)
            .invariant(PA_NET_PARTICIPANTS, (CLIENT_IP, 51000))
            .invariant(PA_LOCAL_PORT, 80)
            .build())
    print(f"connection path: {' -> '.join(conn.routers())}")

    # Capture what goes out on the wire (responses larger than the MTU
    # get fragmented by the IP stage — count the frames to see it).
    wire = []
    graph.router("ETH").transmit = lambda msg: wire.append(msg.to_bytes())
    responses = []
    original_handler = http.handle_request
    http.handle_request = lambda raw: responses.append(
        original_handler(raw)) or responses[-1]

    for target in ("/index.html", "/paper.html", "/missing.html"):
        request = f"GET {target} HTTP/1.0\r\n\r\n".encode()
        seq = conn.stage_of("TCP").recv_next
        frames_before = len(wire)
        conn.deliver(client_segment(graph, seq, request), BWD)
        status = responses[-1].split(b"\r\n", 1)[0].decode()
        body = responses[-1].split(b"\r\n\r\n", 1)[1]
        frames = len(wire) - frames_before
        print(f"GET {target:<14} -> {status:<22} body={len(body):>5}B "
              f"({frames} frames on the wire)")

    print(f"file paths open: {sorted(http._file_paths)}")
    for name, path in http._file_paths.items():
        stage = path.stage_of("UFS")
        print(f"  {name!r}: {' -> '.join(path.routers())}  "
              f"(sequential={stage.sequential}, "
              f"cache_hits={stage.cache_hits})")
    print(f"SCSI ops executed: {graph.router('SCSI').ops_executed}")

    # The degenerate case of Section 2.2: a peer beyond the local network
    # cannot have its route frozen, so the path ends at IP.
    offnet = (PathBuilder(http)
              .invariant(PA_NET_PARTICIPANTS, ("192.168.7.7", 80))
              .build())
    print(f"\npath to an off-net peer: {' -> '.join(offnet.routers())} "
          "(stops at IP: routing not frozen)")


if __name__ == "__main__":
    main()
