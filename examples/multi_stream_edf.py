#!/usr/bin/env python
"""Bottleneck-queue EDF scheduling across nine concurrent videos
(the Section 4.3 experiment, live).

Eight Canyon movies at 10 fps plus one Neptune movie at 30 fps.  Under
EDF, each path thread's wakeup deadline comes from its *output* queue —
"if the output queue drains at 30 frames/second and the queue is half
full, it is trivial to compute the deadline by which the next frame has
to be produced" — so Canyon read-ahead politely yields to Neptune's
urgent frames.  Under single-priority round-robin, Canyon paths are
scheduled "as long as their output queues are not full" and Neptune
misses deadlines.

Run:  python examples/multi_stream_edf.py        (takes ~1 min)
"""

from repro.api import run_edf_rr

NEPTUNE_FRAMES = 450
OUTQ = 128


def main() -> None:
    print(f"8x Canyon@10fps + Neptune@30fps, {OUTQ}-frame output queues\n")
    for policy in ("edf", "rr"):
        result = run_edf_rr(policy, outq_frames=OUTQ,
                            neptune_frames=NEPTUNE_FRAMES)
        print(f"{policy.upper():>4}: Neptune presented "
              f"{result.neptune_presented}/{result.neptune_deadlines}, "
              f"missed {result.neptune_missed} deadlines "
              f"({result.miss_fraction:.1%}); "
              f"Canyon missed {result.canyon_missed}")
    print("\n(paper: EDF misses none; RR with large queues misses a "
          "large number)")


if __name__ == "__main__":
    main()
