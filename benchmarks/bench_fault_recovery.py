"""Fault recovery: TCP goodput per fault profile + watchdog latency.

Measures the two headline robustness numbers:

* byte-stream goodput of a TCP path across each named fault profile
  (the retransmission machinery must deliver everything regardless);
* the watchdog's detection and recovery latency for a quietly stalled
  video path (stall -> teardown -> rebuild -> playback resumed).
"""

from repro.experiments import (
    format_tcp_recovery,
    format_watchdog_recovery,
    run_tcp_profiles,
    run_watchdog_recovery,
)


def test_tcp_recovery_per_profile(benchmark, record_result):
    results = benchmark.pedantic(run_tcp_profiles, rounds=1, iterations=1,
                                 kwargs={"seed": 1,
                                         "payload_bytes": 16_000})
    record_result("fault_recovery_tcp", format_tcp_recovery(results))
    by_name = {r.profile: r for r in results}
    # Every profile's stream arrives complete and byte-identical.
    for r in results:
        assert r.complete, r
    # The clean profile needed no retransmissions; the lossy ones did.
    assert by_name["none"].retransmissions == 0
    assert by_name["drop10"].retransmissions > 0
    assert by_name["drop10"].link["dropped"] > 0
    # Loss costs time: goodput under faults is below the clean run's.
    assert by_name["drop10"].goodput_kbps < by_name["none"].goodput_kbps


def test_watchdog_recovery_latency(benchmark, record_result):
    result = benchmark.pedantic(run_watchdog_recovery, rounds=1,
                                iterations=1,
                                kwargs={"seed": 3, "nframes": 120,
                                        "max_seconds": 30.0})
    record_result("fault_recovery_watchdog",
                  format_watchdog_recovery(result))
    assert result.stalls_detected >= 1
    assert result.rebuilds >= 1
    # Detection within the stall budget plus two check intervals.
    assert result.detection_latency_us is not None
    assert result.detection_latency_us <= result.stall_budget_us + 100_000.0
    # The rebuilt path actually played video, and the source finished.
    assert result.recovery_latency_us is not None
    assert result.frames_after_rebuild > 0
    assert result.source_done
