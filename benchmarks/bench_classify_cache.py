"""The demux fast path: an exact-match flow cache in front of the
refinement chain.

Cold classification walks the ETH -> IP -> UDP refinement chain — one
demux call per router, each a header parse plus dictionary probe.  A
warm flow-cache hit replaces the walk with a single exact-match lookup
on the peeked header bytes.  Acceptance: the warm lookup is at least 3x
faster than the cold chain.

Results land in ``benchmarks/results/BENCH_fastpath.json`` (section
``classify``) alongside the traversal numbers from
``bench_path_micro.py``.
"""

import time

from repro.core import FlowCache, Msg, classify
from repro.experiments import Fig7Stack

LOOPS = 5000

#: The acceptance floor for the warm/cold ratio.
MIN_SPEEDUP = 3.0


def _classify_us(stack, msg, cache, loops=LOOPS):
    """Steady-state per-call cost, excluding Msg construction (both
    variants would pay it identically; the demux decision is what is
    being compared)."""
    classify(stack.eth, msg, cache=cache)  # warm the interpreter
    start = time.perf_counter()
    for _ in range(loops):
        classify(stack.eth, msg, cache=cache)
    return (time.perf_counter() - start) / loops * 1e6


def test_flow_cache_hit_vs_cold_chain(benchmark, record_fastpath):
    stack = Fig7Stack()
    path = stack.create_udp_path(local_port=6100)
    msg = Msg(stack.udp_frame(6100))

    cold_us = _classify_us(stack, msg, cache=None)

    cache = FlowCache(capacity=128)
    classify(stack.eth, Msg(stack.udp_frame(6100)), cache=cache)  # populate
    assert cache.lookup(msg) is path  # precondition: the flow is cached

    def warm_hit():
        found = classify(stack.eth, msg, cache=cache)
        assert found is path

    benchmark(warm_hit)
    warm_us = benchmark.stats.stats.mean * 1e6
    speedup = cold_us / warm_us
    record_fastpath("classify", {
        "cold_chain_us": round(cold_us, 4),
        "warm_cache_us": round(warm_us, 4),
        "speedup": round(speedup, 2),
        "loops": LOOPS,
        "cache_hits": cache.hits,
        "cache_misses": cache.misses,
    })
    assert speedup >= MIN_SPEEDUP, (
        f"warm flow-cache classify must be >= {MIN_SPEEDUP}x faster than "
        f"the cold chain (got {speedup:.2f}x: cold {cold_us:.2f}us, "
        f"warm {warm_us:.2f}us)")


def test_cache_eviction_churn_cost(benchmark):
    """Worst case: every packet belongs to a different flow, so a bounded
    cache thrashes — each lookup misses, each insert evicts.  This must
    stay within the same order as an uncached classification (the cache
    must never be a tax on cold traffic)."""
    stack = Fig7Stack()
    stack.create_udp_path(local_port=6100)
    cache = FlowCache(capacity=16)
    # 64 distinct flows round-robin through a 16-entry cache: pure churn.
    msgs = []
    for index in range(64):
        frame = bytearray(stack.udp_frame(6100))
        frame[34] = index  # vary the source port: a distinct flow key
        msgs.append(Msg(bytes(frame)))
    cursor = iter([])

    def churn():
        nonlocal cursor
        msg = next(cursor, None)
        if msg is None:
            cursor = iter(msgs)
            msg = next(cursor)
        classify(stack.eth, msg, cache=cache)

    benchmark(churn)
    assert cache.evictions > 0  # the churn really happened
