"""Shard-fabric acceptance benchmark (DESIGN.md §17).

Two claims gate the sharded kernel fabric:

* **Scaling** — on a warm batched UDP workload, a 4-shard
  process-mode fabric must deliver at least **2.5x** the throughput of
  the single-kernel (1-shard) configuration.  The speedup floor is only
  asserted when the machine actually has >= 4 usable cores (CI's
  runners do); on smaller boxes the sweep still runs and records, and
  the gate is skipped with an explanation — a 1-core container cannot
  exhibit parallel speedup by construction.
* **Reconciliation** — at every shard count the merged books must be
  exact: zero ledger leaks, zero double counts, merged metrics and
  drop categories equal to the per-shard sums, serial for serial.
  This gate runs unconditionally; exactness does not need cores.

Results land in ``benchmarks/results/BENCH_shard.json`` (sections
``scaling`` and ``reconciliation``), uploaded by CI's bench-smoke job.
"""

import os
import time

import pytest

from repro.faults.adversary import DELIVERED
from repro.net.addresses import EthAddr, IpAddr
from repro.net.packets import build_udp_frame
from repro.shard import ShardedKernel

#: Acceptance floor (ISSUE acceptance criteria): 4-shard process mode
#: vs the single-kernel baseline.
MIN_SHARD_SPEEDUP = 2.5

SHARD_COUNTS = (1, 2, 4)
FLOWS = 16
FRAMES_PER_FLOW_PER_OFFER = 48
OFFERS = 4
BATCH = 16
SINK_PORT = 6100


def usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def workload(offer_index: int):
    """One offer's frames: every flow fires a warm back-to-back run."""
    frames = []
    base = offer_index * FLOWS * FRAMES_PER_FLOW_PER_OFFER
    sequence = base
    for flow in range(FLOWS):
        for _ in range(FRAMES_PER_FLOW_PER_OFFER):
            frames.append(bytes(build_udp_frame(
                EthAddr("02:00:00:00:00:02"), EthAddr("02:00:00:00:00:01"),
                IpAddr("10.0.0.2"), IpAddr("10.0.0.1"),
                7000 + flow, SINK_PORT + flow,
                b"flow%02d-%06d" % (flow, sequence))))
            sequence += 1
    return frames


PORTS = tuple(SINK_PORT + flow for flow in range(FLOWS))


def run_fabric(shards: int, mode: str):
    """Drive the warm workload; return (throughput fps, FabricBooks)."""
    fabric = ShardedKernel(shards=shards, mode=mode, ports=PORTS,
                           batch=BATCH, inq_len=2 * FRAMES_PER_FLOW_PER_OFFER)
    fabric.offer(workload(OFFERS))  # warm: caches hot, workers paging
    total = 0
    begin = time.perf_counter()
    for offer_index in range(OFFERS):
        frames = workload(offer_index)
        fabric.offer(frames)
        total += len(frames)
    elapsed = time.perf_counter() - begin
    books = fabric.finish()
    return total / elapsed, books


def test_shard_scaling_and_reconciliation(record_shard):
    cores = usable_cores()
    throughput = {}
    reconciliation = {}
    for shards in SHARD_COUNTS:
        fps, books = run_fabric(shards, mode="process")
        throughput[shards] = fps
        recon = books.reconciliation
        reconciliation[shards] = {
            "ok": recon["ok"],
            "injected": recon["injected"],
            "delivered": recon["counts"].get(DELIVERED, 0),
            "leaks": len(recon["leaks"]),
            "double_counted": len(recon["double_counted"]),
            "mismatches": recon["mismatches"],
        }
        # The reconciliation gate is unconditional: merged books must be
        # exact at every scale, parallel or not.
        assert recon["ok"], f"{shards}-shard books failed to reconcile: " \
            f"{recon['mismatches'] or recon['leaks']}"
        assert recon["injected"] == (OFFERS + 1) * FLOWS * \
            FRAMES_PER_FLOW_PER_OFFER

    speedup_4 = throughput[4] / throughput[1]
    record_shard("scaling", {
        "cores": cores,
        "frames_per_offer": FLOWS * FRAMES_PER_FLOW_PER_OFFER,
        "offers": OFFERS,
        "throughput_fps": {str(k): round(v, 1)
                           for k, v in throughput.items()},
        "speedup_2": round(throughput[2] / throughput[1], 3),
        "speedup_4": round(speedup_4, 3),
        "min_speedup_4": MIN_SHARD_SPEEDUP,
        "gate_asserted": cores >= 4,
    })
    record_shard("reconciliation", {str(k): v
                                    for k, v in reconciliation.items()})

    if cores < 4:
        pytest.skip(f"speedup gate needs >= 4 usable cores, have {cores}: "
                    f"recorded speedup_4={speedup_4:.2f} without asserting")
    assert speedup_4 >= MIN_SHARD_SPEEDUP, \
        f"4-shard speedup {speedup_4:.2f}x below {MIN_SHARD_SPEEDUP}x floor"


def test_threads_mode_matches_process_mode_books(record_shard):
    """The deterministic tier-1 mode and the parallel mode keep the
    same books on the same workload — the cheap cross-mode sentinel
    that makes the scaling numbers above trustworthy."""
    books = {}
    for mode in ("threads", "process"):
        fabric = ShardedKernel(shards=4, mode=mode, ports=PORTS,
                               batch=BATCH,
                               inq_len=2 * FRAMES_PER_FLOW_PER_OFFER)
        for offer_index in range(2):
            fabric.offer(workload(offer_index))
        books[mode] = fabric.finish()
    threads_counts = books["threads"].ledger.counts()
    process_counts = books["process"].ledger.counts()
    record_shard("mode_parity", {
        "threads": threads_counts,
        "process": process_counts,
        "equal": threads_counts == process_counts,
    })
    assert threads_counts == process_counts
    assert books["threads"].ok and books["process"].ok
