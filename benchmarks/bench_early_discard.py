"""Regenerates E7 (Section 4.4): early discard of skipped frames."""

from repro.experiments import format_early_discard, run_early_discard


def test_early_discard_saves_cpu(benchmark, record_result):
    results = benchmark.pedantic(run_early_discard, rounds=1, iterations=1)
    record_result("early_discard", format_early_discard(results))
    full, naive, early = results
    # Reduced quality shows ~1/3 of the frames.
    assert early.frames_presented < full.frames_presented
    # The naive version decodes frames nobody sees; early drop does not.
    assert naive.decoded_then_skipped > 0
    assert early.decoded_then_skipped == 0
    assert early.adapter_drops > 0
    # "This avoids wasting CPU cycles": early drop burns substantially
    # less total CPU than decode-then-discard.
    assert early.total_cpu_s < 0.6 * naive.total_cpu_s, (naive, early)
