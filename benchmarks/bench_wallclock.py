"""Wall-clock edge benchmark (DESIGN.md §18).

Three measurements gate the asyncio executor + socket backend:

* **Parity under load** — a warm batched UDP burst must deliver the
  same frames with the same drop books under the asyncio executor as
  under the deterministic scheduler (the load-scale companion to
  ``tests/aio/test_parity.py``).
* **Executor throughput** — frames/second through ``rx_burst`` +
  ``settle`` on the asyncio executor, against the same workload on
  virtual time; both are recorded so regressions in either executor
  are visible in the artifact history.
* **Socket loopback** — an in-process UDP sender drives the socket
  backend end-to-end; delivered counts must reconcile exactly with
  the device ledger (recorded as skipped where sockets are denied).

Results land in ``benchmarks/results/BENCH_wallclock.json`` (sections
``parity``, ``throughput`` and ``loopback``), uploaded by CI's
bench-smoke job.
"""

import asyncio
import socket
import time

from repro.api import EthAddr, IpAddr, Scout, build_udp_frame

LOCAL_MAC = EthAddr("02:00:00:00:00:01")
LOCAL_IP = IpAddr("10.0.0.1")
REMOTE_MAC = EthAddr("02:00:00:00:00:02")
REMOTE_IP = IpAddr("10.0.0.2")
SINK_PORT = 6100
FLOWS = 4
BURSTS = 8
FRAMES_PER_FLOW_PER_BURST = 24
BATCH = 16


def loopback_available() -> bool:
    try:
        probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        probe.bind(("127.0.0.1", 0))
        probe.close()
        return True
    except OSError:
        return False


def burst(index: int):
    frames = []
    for flow in range(FLOWS):
        for i in range(FRAMES_PER_FLOW_PER_BURST):
            seq = index * FRAMES_PER_FLOW_PER_BURST + i
            frames.append(build_udp_frame(
                REMOTE_MAC, LOCAL_MAC, REMOTE_IP, LOCAL_IP,
                7000 + flow, SINK_PORT + flow,
                b"wc%02d-%06d" % (flow, seq)))
    return frames


def _setup(scout: Scout, drops: list) -> None:
    scout.kernel.drop_hook = lambda msg, category: drops.append(category)
    scout.add_peer(REMOTE_IP, REMOTE_MAC)
    for flow in range(FLOWS):
        scout.kernel.start_udp_sink(SINK_PORT + flow,
                                    (str(REMOTE_IP), 7000 + flow),
                                    batch=BATCH, inq_len=256)


def _books(scout: Scout, drops: list) -> dict:
    test = scout.kernel.test
    streams = {}
    for msg in test.received:
        payload = msg.to_bytes()
        streams.setdefault(payload[:4], []).append(payload)
    return {
        "delivered": len(test.received),
        "bytes": test.bytes_received,
        "drops": sorted(drops),
        "streams": streams,
    }


def run_sim_executor() -> tuple:
    drops = []
    started = time.perf_counter()
    with Scout(seed=9, udp_sink=True, display=False) as scout:
        _setup(scout, drops)
        for index in range(BURSTS):
            scout.kernel.rx_burst(burst(index))
            scout.world.run_until_idle()
        return _books(scout, drops), time.perf_counter() - started


def run_aio_executor() -> tuple:
    async def main():
        drops = []
        started = time.perf_counter()
        async with Scout(seed=9, executor="asyncio",
                         udp_sink=True) as scout:
            _setup(scout, drops)
            for index in range(BURSTS):
                scout.kernel.rx_burst(burst(index))
                await scout.settle()
            snap = scout.wallclock()
            return _books(scout, drops), time.perf_counter() - started, snap

    return asyncio.run(main())


class TestWallclockBench:
    def test_parity_and_throughput(self, record_wallclock):
        total = FLOWS * BURSTS * FRAMES_PER_FLOW_PER_BURST
        sim_books, sim_elapsed = run_sim_executor()
        aio_books, aio_elapsed, snap = run_aio_executor()

        assert aio_books == sim_books, \
            "asyncio executor diverged from the deterministic scheduler"
        record_wallclock("parity", {
            "frames": total,
            "delivered": aio_books["delivered"],
            "drops": len(aio_books["drops"]),
            "byte_identical": True,
        })
        record_wallclock("throughput", {
            "frames": total,
            "sim_wall_s": round(sim_elapsed, 4),
            "sim_frames_per_s": round(total / sim_elapsed, 1),
            "aio_wall_s": round(aio_elapsed, 4),
            "aio_frames_per_s": round(aio_elapsed and total / aio_elapsed, 1),
            "virtual_cpu_s": round(snap["virtual_cpu_s"], 6),
            "speedup_vs_modeled_cpu": round(snap["speedup"], 3),
        })

    def test_socket_loopback(self, record_wallclock):
        if not loopback_available():
            record_wallclock("loopback", {"skipped": True,
                                          "reason": "no loopback sockets"})
            return

        sent = 200

        async def main():
            async with Scout(seed=9, backend="socket",
                             executor="asyncio") as scout:
                drops = []
                scout.kernel.drop_hook = \
                    lambda msg, category: drops.append(category)
                sender = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
                sender.bind(("127.0.0.1", 0))
                scout.add_peer(REMOTE_IP, REMOTE_MAC, sender.getsockname())
                scout.kernel.start_udp_sink(SINK_PORT,
                                            (str(REMOTE_IP), 7000),
                                            batch=BATCH, inq_len=256)
                started = time.perf_counter()
                for seq in range(sent):
                    sender.sendto(build_udp_frame(
                        REMOTE_MAC, LOCAL_MAC, REMOTE_IP, LOCAL_IP,
                        7000, SINK_PORT, b"loop-%06d" % seq),
                        scout.device.address)
                loop = asyncio.get_running_loop()
                deadline = loop.time() + 10.0
                device = scout.device
                while (len(scout.kernel.test.received) + len(drops)
                       < device.rx_frames or device.pending()
                       or (device.rx_frames
                           + sum(device.drop_ledger().values()) < sent
                           and loop.time() < deadline)):
                    if loop.time() >= deadline:
                        break
                    await scout.serve(seconds=0.05)
                elapsed = time.perf_counter() - started
                sender.close()
                delivered = len(scout.kernel.test.received)
                assert device.rx_frames == delivered + len(drops), \
                    "socket books must reconcile exactly"
                return {
                    "sent": sent,
                    "device_rx": device.rx_frames,
                    "delivered": delivered,
                    "admission_drops": len(drops),
                    "device_drops": device.drop_ledger(),
                    "wall_s": round(elapsed, 4),
                    "frames_per_s": round(delivered / elapsed, 1),
                }

        record_wallclock("loopback", asyncio.run(main()))
