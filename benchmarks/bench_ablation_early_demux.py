"""Regenerates E8: ablations — early segregation and ALF packetization."""

from repro.experiments import (
    format_alf,
    format_segregation,
    run_alf_ablation,
    run_segregation_sweep,
)


def test_early_segregation_ablation(benchmark, record_result):
    points = benchmark.pedantic(run_segregation_sweep, rounds=1, iterations=1,
                                kwargs={"rates_pps": [0, 2000, 4000]})
    record_result("ablation_segregation", format_segregation(points))
    by_system = {}
    for p in points:
        by_system.setdefault(p.system, {})[p.flood_pps] = p
    scout = by_system["scout"]
    no_seg = by_system["scout-no-segregation"]
    linux = by_system["linux"]
    # Scout-with-segregation barely notices 4k pps.
    scout_drop = 1 - scout[4000].fps / scout[0].fps
    assert scout_drop < 0.05, scout_drop
    # Removing early segregation exposes Scout to interrupt-time echo
    # service: it degrades several times worse (though still less than
    # the baseline, whose per-packet kernel costs are higher).
    no_seg_drop = 1 - no_seg[4000].fps / no_seg[0].fps
    linux_drop = 1 - linux[4000].fps / linux[0].fps
    assert no_seg_drop > 3 * max(scout_drop, 0.01), (scout_drop, no_seg_drop)
    assert linux_drop > no_seg_drop
    assert scout[4000].fps > no_seg[4000].fps > linux[4000].fps


def test_alf_ablation(benchmark, record_result):
    results = benchmark.pedantic(run_alf_ablation, rounds=1, iterations=1)
    record_result("ablation_alf", format_alf(results))
    alf, stream = results
    assert alf.framing == "ALF"
    # ALF needs no cross-packet buffering inside the decoder; byte-stream
    # framing forces nearly a frame's worth.
    assert alf.peak_decoder_buffer_bytes == 0
    assert stream.peak_decoder_buffer_bytes > 2000
    # Both decode the stream correctly.
    assert alf.frames_decoded == stream.frames_decoded
