"""Regenerates Table 2: Neptune frame rate under a ping -f flood."""

from repro.experiments import format_table2, run_table2


def test_table2_frame_rate_under_load(benchmark, record_result):
    rows = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    record_result("table2", format_table2(rows))
    scout = next(r for r in rows if r.system == "Scout")
    linux = next(r for r in rows if r.system == "Linux")
    # The paper's shape: Scout loses almost nothing (-0.2%), Linux loses
    # a large fraction (-42.1%).
    assert scout.delta_pct > -5.0, scout
    assert linux.delta_pct < -25.0, linux
    assert scout.loaded_fps > linux.loaded_fps
    # The emergent flood rates explain the result: the kernel that answers
    # promptly gets flooded hard, the one that deprioritizes does not.
    assert linux.flood_rate_pps > 1000
