"""Regenerates E5 (Section 4.2): input queue sizing vs RTT.

The achieved decode rate should saturate once the input queue reaches the
paper's 2 x RTT x bandwidth rule (computed from the system's *own*
measurements: MFLOW's RTT estimate and the ETH-stage processing-time
probe)."""

from repro.experiments import format_queue_sizing, run_queue_sizing


def test_input_queue_sizing(benchmark, record_result):
    points = benchmark.pedantic(
        run_queue_sizing, rounds=1, iterations=1,
        kwargs={"latencies_us": [100.0, 10_000.0],
                "inq_lens": [1, 2, 4, 8, 16, 32]})
    record_result("queue_sizing", format_queue_sizing(points))
    by_latency = {}
    for p in points:
        by_latency.setdefault(p.latency_us, []).append(p)
    for latency, series in by_latency.items():
        series.sort(key=lambda p: p.inq_len)
        best = max(p.fps for p in series)
        # Starved at a 1-slot queue on the slow link, saturated at 32.
        assert series[-1].fps >= 0.95 * best, series
        if latency >= 10_000.0:
            assert series[0].fps < 0.8 * best, series
        # Once the queue reaches the paper's predicted sufficient size,
        # throughput is within 10% of saturation.
        for p in series:
            predicted = p.predicted_sufficient_inq
            if predicted is not None and p.inq_len >= predicted:
                assert p.fps >= 0.90 * best, p
