"""Batched path execution acceptance benchmark (DESIGN.md §13).

One claim gates the batching subsystem: on the warm UDP fast path —
flow-cache classification feeding a scheduler-driven path thread — a
batch size of 32 must deliver **at least 2x** the throughput of
per-message dispatch, with *nothing else* changing: the drop ledger
(``offered == delivered + dropped``) and every classifier, cache,
queue, and per-path counter must reconcile exactly against the
per-message run.

The measured pipeline is the kernel's receive shape end to end:
``classify``/``classify_batch`` over an annotating :class:`FlowCache`
(the validated-run fast receive), ``try_enqueue``/``try_enqueue_batch``
onto the path input queue, and a simulated path thread that wakes via
``Dequeue``/``DequeueBatch``, reserves output space, traverses the
compiled chain, and charges decode cost — one scheduler dispatch per
message versus one per batch.

Results land in ``benchmarks/results/BENCH_batching.json`` (sections
``throughput`` and ``overflow``), uploaded by CI's bench-smoke job.
"""

import gc
import time

from repro.core import (ClassifierStats, FlowCache, Msg, PathQueue,
                        classify, classify_batch)
from repro.core.stage import BWD
from repro.experiments.micro import Fig7Stack
from repro.sim import (Compute, Dequeue, DequeueBatch, SimWorld, WaitSpace,
                       YIELD)

PORT = 6100

#: Acceptance floor (ISSUE acceptance criteria).
MIN_BATCH_SPEEDUP = 2.0

BATCH = 32
FRAMES = BATCH * 64

#: Modeled decode cost per message, charged to the simulated CPU (the
#: simulation's virtual microseconds are free at the wall clock; they
#: only shape the scheduler's dispatch pattern).
COST_US = 100.0

#: Wall-clock rounds per mode; the minimum filters scheduler noise.
ROUNDS = 7


def _annotate(msg, key):
    """What the kernel's flow-cache annotate hook guarantees: the key
    match re-validated the ETH/IP/UDP headers, so stages may take their
    validated fast receive."""
    meta = msg.meta
    meta["eth_validated"] = True
    meta["ip_validated"] = True
    meta["udp_validated"] = True


class _Pipeline:
    """One warm UDP receive pipeline: stack, path, cache, queues, and a
    path thread parameterized by dispatch mode."""

    def __init__(self):
        self.stack = Fig7Stack()
        self.path = self.stack.create_udp_path(PORT)
        self.cache = FlowCache(capacity=64, annotate=_annotate)
        self.stats = ClassifierStats()
        self.frames = [self.stack.udp_frame(PORT, payload=b"x" * 64)
                       for _ in range(FRAMES)]
        # Warm the flow entry so every measured arrival is a cache hit.
        classify(self.stack.eth, Msg(self.stack.udp_frame(PORT)),
                 stats=self.stats, cache=self.cache)
        self.world = SimWorld(seed=0)
        self.inq = PathQueue(maxlen=FRAMES)

    def _thread(self, batched):
        path, inq = self.path, self.inq
        outq = path.output_queue(BWD)
        processed = 0
        while processed < FRAMES:
            if batched:
                msgs = yield DequeueBatch(inq, BATCH)
                yield WaitSpace(outq)
                path.deliver_batch(msgs, BWD)
                cost = 0.0
                for msg in msgs:
                    cost += COST_US
                    path.stats.release_memory(msg.footprint())
                outq.dequeue_batch()
                yield Compute(cost)
                processed += len(msgs)
            else:
                msg = yield Dequeue(inq)
                yield WaitSpace(outq)
                path.deliver(msg, BWD)
                yield Compute(COST_US)
                path.stats.release_memory(msg.footprint())
                outq.try_dequeue()
                processed += 1
            yield YIELD

    def run(self, batched):
        """Offer every frame, drain them all, return wall seconds."""
        self.world.spawn(self._thread(batched), name="drain")
        path, inq = self.path, self.inq
        gc.collect()
        gc.disable()
        try:
            start = time.perf_counter()
            if batched:
                for i in range(0, FRAMES, BATCH):
                    msgs = [Msg(f) for f in self.frames[i:i + BATCH]]
                    classify_batch(self.stack.eth, msgs, stats=self.stats,
                                   cache=self.cache)
                    for msg in msgs:
                        path.stats.charge_memory(msg.footprint())
                    inq.try_enqueue_batch(msgs)
            else:
                for frame in self.frames:
                    msg = Msg(frame)
                    classify(self.stack.eth, msg, stats=self.stats,
                             cache=self.cache)
                    path.stats.charge_memory(msg.footprint())
                    inq.try_enqueue(msg)
            self.world.run_until_idle()
            return time.perf_counter() - start
        finally:
            gc.enable()

    def books(self):
        """Every counter that must not depend on the dispatch mode."""
        stack, path = self.stack, self.path
        return {
            "delivered": len(stack.test.received),
            "classified": self.stats.classified,
            "classifier_cache_hits": self.stats.cache_hits,
            "cache": (self.cache.hits, self.cache.misses),
            "inq": (self.inq.enqueued, self.inq.dequeued,
                    self.inq.dropped),
            "outq": (self.path.output_queue(BWD).enqueued,
                     self.path.output_queue(BWD).dequeued,
                     self.path.output_queue(BWD).dropped),
            "path_messages_bwd": path.stats.messages_bwd,
            "path_drops": path.stats.drops,
            "path_mem_outstanding": path.stats.mem_bytes,
            "eth_rx_validated": stack.eth.rx_validated,
            "ip_rx_validated": stack.ip.rx_validated,
            "sink_overflows": stack.test.sink_overflows,
        }


def test_batch32_throughput_vs_per_message(record_batching):
    """Batch size 32 versus per-message dispatch on the warm UDP path:
    >= 2x delivered throughput, identical books."""
    solo_books = batched_books = None
    solo_s = batched_s = float("inf")
    for _ in range(ROUNDS):
        pipe = _Pipeline()
        solo_s = min(solo_s, pipe.run(batched=False))
        solo_books = pipe.books()
        pipe = _Pipeline()
        batched_s = min(batched_s, pipe.run(batched=True))
        batched_books = pipe.books()

    # Exact reconciliation: batching changed *when* work ran, not what
    # happened — every ledger equal, nothing dropped, memory returned.
    assert batched_books == solo_books
    assert batched_books["delivered"] == FRAMES
    assert batched_books["path_drops"] == 0
    assert batched_books["path_mem_outstanding"] == 0
    assert batched_books["eth_rx_validated"] == FRAMES

    speedup = solo_s / batched_s
    record_batching("throughput", {
        "batch": BATCH,
        "frames": FRAMES,
        "rounds": ROUNDS,
        "per_message_msgs_per_s": round(FRAMES / solo_s),
        "batched_msgs_per_s": round(FRAMES / batched_s),
        "speedup": round(speedup, 2),
        "books": {k: v for k, v in batched_books.items()
                  if not isinstance(v, tuple)},
    })
    assert speedup >= MIN_BATCH_SPEEDUP, (
        f"batch={BATCH} dispatch must deliver >= {MIN_BATCH_SPEEDUP}x "
        f"per-message throughput on the warm UDP path (got "
        f"{speedup:.2f}x: solo {FRAMES / solo_s:.0f}/s, "
        f"batched {FRAMES / batched_s:.0f}/s)")


def _offer_overloaded(batched, capacity=32, burst=96):
    """Offer *burst* classified frames at a *capacity*-slot input queue
    in one round — no drain between arrivals — and account every
    rejection.  Returns (offered, accepted, books)."""
    stack = Fig7Stack()
    path = stack.create_udp_path(PORT)
    cache = FlowCache(capacity=64, annotate=_annotate)
    classify(stack.eth, Msg(stack.udp_frame(PORT)), cache=cache)
    inq = PathQueue(maxlen=capacity)
    frames = [stack.udp_frame(PORT, payload=b"y" * 32) for _ in range(burst)]
    if batched:
        msgs = [Msg(f) for f in frames]
        classify_batch(stack.eth, msgs, cache=cache)
        accepted = inq.try_enqueue_batch(msgs)
        for msg in msgs[accepted:]:
            path.note_drop(msg, "path input queue full", "inq_overflow")
    else:
        accepted = 0
        for frame in frames:
            msg = Msg(frame)
            classify(stack.eth, msg, cache=cache)
            if inq.try_enqueue(msg):
                accepted += 1
            else:
                path.note_drop(msg, "path input queue full", "inq_overflow")
    books = {
        "accepted": accepted,
        "queue_dropped": inq.dropped,
        "path_drops": path.stats.drops,
        "drop_reasons": dict(path.stats.drop_reasons),
        "cache_hits": cache.hits,
    }
    return burst, accepted, books


def test_overflow_drop_ledger_matches_per_item(record_batching):
    """``try_enqueue_batch`` under overload drops exactly the messages
    per-item enqueue would, with identical categorized accounting."""
    offered_s, accepted_s, solo_books = _offer_overloaded(batched=False)
    offered_b, accepted_b, batched_books = _offer_overloaded(batched=True)

    assert batched_books == solo_books
    assert offered_b == accepted_b + batched_books["path_drops"]
    assert offered_s == accepted_s + solo_books["path_drops"]
    assert batched_books["path_drops"] > 0  # the queue really overflowed
    assert batched_books["queue_dropped"] == batched_books["path_drops"]

    record_batching("overflow", {
        "offered": offered_b,
        "accepted": accepted_b,
        "dropped": batched_books["path_drops"],
        "drop_reasons": batched_books["drop_reasons"],
    })
