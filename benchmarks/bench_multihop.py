"""Multi-hop forwarding acceptance benchmarks: PMTUD pays for itself.

Two claims gate the forwarding/discovery subsystem:

* **differential** — a 3-hop chain with per-link MTUs 1500/600/1500
  delivers byte-identical payloads to the single-hop baseline, both
  with an MTU-oblivious sender (routers fragment in flight) and after
  path-MTU discovery — and the converged sender puts **zero** fragments
  on the wire, at the source or at any hop;
* **goodput** — on a lossy min-MTU link, post-PMTUD steady state must
  sustain at least 1.5x the always-fragmenting baseline's goodput:
  losing any one fragment loses the whole datagram, so the baseline
  decays with the fragment count per datagram while the resegmenting
  sender decays only with the datagram count.

Results land in ``benchmarks/results/BENCH_multihop.json`` (sections
``differential`` and ``loss_goodput``), uploaded by CI's bench-smoke
job.
"""

from repro.experiments import run_loss_amplification, run_multihop

#: Acceptance floor (ISSUE acceptance criteria).
MIN_GOODPUT_RATIO = 1.5

BLOB_SIZE = 20_000
LOSS_RATE = 0.25
LOSS_BLOB_SIZE = 100_000


def test_differential_delivery(record_multihop):
    runs = run_multihop(blob_size=BLOB_SIZE)
    by_label = {r.label: r for r in runs}
    baseline = by_label["single-hop baseline"]
    inflight = by_label["3-hop, in-flight frag"]
    pmtud = by_label["3-hop, PMTUD"]

    record_multihop("differential", {
        "blob_bytes": BLOB_SIZE,
        "runs": [r._asdict() for r in runs],
    })

    # Byte-identity across all three data paths.
    assert baseline.identical and inflight.identical and pmtud.identical
    assert (baseline.bytes_delivered == inflight.bytes_delivered
            == pmtud.bytes_delivered == BLOB_SIZE)
    # The oblivious sender really did force in-flight fragmentation...
    assert inflight.inflight_fragments > 0
    # ...and the converged sender put zero fragments on the wire.
    assert pmtud.pmtu == 600
    assert pmtud.sender_fragments == 0
    assert pmtud.inflight_fragments == 0


def test_pmtud_goodput_on_lossy_min_mtu_path(record_multihop):
    result = run_loss_amplification(loss_rate=LOSS_RATE,
                                    blob_size=LOSS_BLOB_SIZE)
    record_multihop("loss_goodput", {
        "loss_rate": result.loss_rate,
        "blob_bytes": LOSS_BLOB_SIZE,
        "frag_datagrams": result.frag_datagrams,
        "frag_bytes": result.frag_bytes,
        "pmtud_datagrams": result.pmtud_datagrams,
        "pmtud_bytes": result.pmtud_bytes,
        "goodput_ratio": round(result.ratio, 2),
    })
    assert result.pmtud_bytes > result.frag_bytes
    assert result.ratio >= MIN_GOODPUT_RATIO, (
        f"post-PMTUD steady state must sustain >= {MIN_GOODPUT_RATIO}x "
        f"the always-fragmenting baseline on the lossy min-MTU path "
        f"(got {result.ratio:.2f}x: frag {result.frag_bytes} B, "
        f"pmtud {result.pmtud_bytes} B)")
