"""Shared benchmark plumbing.

Every macro benchmark regenerates one of the paper's tables/experiments;
the rendered table is printed (visible with ``pytest -s``) and also
written to ``benchmarks/results/<name>.txt`` so results survive output
capture.
"""

from __future__ import annotations

import json
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

FASTPATH_RESULTS = RESULTS_DIR / "BENCH_fastpath.json"

MULTIPATH_RESULTS = RESULTS_DIR / "BENCH_multipath.json"

BATCHING_RESULTS = RESULTS_DIR / "BENCH_batching.json"

ADVERSARY_RESULTS = RESULTS_DIR / "BENCH_adversary.json"

MULTIHOP_RESULTS = RESULTS_DIR / "BENCH_multihop.json"

SHARD_RESULTS = RESULTS_DIR / "BENCH_shard.json"

WALLCLOCK_RESULTS = RESULTS_DIR / "BENCH_wallclock.json"


def _merge_section(target: pathlib.Path, section: str, payload: dict,
                   tag: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    data = {}
    if target.exists():
        data = json.loads(target.read_text())
    data[section] = payload
    target.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    print(f"\n{tag}[{section}]: {json.dumps(payload, sort_keys=True)}")


@pytest.fixture
def record_result():
    """Save a rendered experiment table and echo it."""

    def record(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)

    return record


@pytest.fixture
def record_fastpath():
    """Merge one named section into the machine-readable fast-path
    results file (``benchmarks/results/BENCH_fastpath.json``).

    Sections merge rather than overwrite so the classify-cache and
    traversal benchmarks — separate test files — accumulate into a
    single artifact for CI to upload."""

    def record(section: str, payload: dict) -> None:
        _merge_section(FASTPATH_RESULTS, section, payload, "BENCH_fastpath")

    return record


@pytest.fixture
def record_multipath():
    """Merge one named section into the machine-readable multipath
    results file (``benchmarks/results/BENCH_multipath.json``) — the
    pool-acquisition and group-throughput benchmarks accumulate into a
    single artifact for CI to upload."""

    def record(section: str, payload: dict) -> None:
        _merge_section(MULTIPATH_RESULTS, section, payload, "BENCH_multipath")

    return record


@pytest.fixture
def record_batching():
    """Merge one named section into the machine-readable batching
    results file (``benchmarks/results/BENCH_batching.json``) — the
    throughput and overflow-ledger benchmarks accumulate into a single
    artifact for CI to upload."""

    def record(section: str, payload: dict) -> None:
        _merge_section(BATCHING_RESULTS, section, payload, "BENCH_batching")

    return record


@pytest.fixture
def record_adversary():
    """Merge one named section into the machine-readable adversary
    results file (``benchmarks/results/BENCH_adversary.json``) — one
    section per strategy x scheduler stability verdict, accumulated
    into a single artifact for CI to upload."""

    def record(section: str, payload: dict) -> None:
        _merge_section(ADVERSARY_RESULTS, section, payload, "BENCH_adversary")

    return record


@pytest.fixture
def record_multihop():
    """Merge one named section into the machine-readable multi-hop
    results file (``benchmarks/results/BENCH_multihop.json``) — the
    differential-delivery and lossy-link goodput benchmarks accumulate
    into a single artifact for CI to upload."""

    def record(section: str, payload: dict) -> None:
        _merge_section(MULTIHOP_RESULTS, section, payload, "BENCH_multihop")

    return record


@pytest.fixture
def record_shard():
    """Merge one named section into the machine-readable shard-fabric
    results file (``benchmarks/results/BENCH_shard.json``) — the
    scaling sweep and the reconciliation gate accumulate into a single
    artifact for CI to upload."""

    def record(section: str, payload: dict) -> None:
        _merge_section(SHARD_RESULTS, section, payload, "BENCH_shard")

    return record


@pytest.fixture
def record_wallclock():
    """Merge one named section into the machine-readable wall-clock
    results file (``benchmarks/results/BENCH_wallclock.json``) — the
    asyncio-executor throughput and socket-loopback benchmarks
    accumulate into a single artifact for CI to upload."""

    def record(section: str, payload: dict) -> None:
        _merge_section(WALLCLOCK_RESULTS, section, payload, "BENCH_wallclock")

    return record
