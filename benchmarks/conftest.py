"""Shared benchmark plumbing.

Every macro benchmark regenerates one of the paper's tables/experiments;
the rendered table is printed (visible with ``pytest -s``) and also
written to ``benchmarks/results/<name>.txt`` so results survive output
capture.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_result():
    """Save a rendered experiment table and echo it."""

    def record(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)

    return record
