"""Regenerates Table 1: max decode rate, Scout vs Linux, four clips.

Run with ``pytest benchmarks/bench_table1_decode_rates.py --benchmark-only -s``.
Set ``REPRO_FULL=1`` to stream the full-length clips the paper used.
"""

from repro.experiments import PAPER_TABLE1, format_table1, run_table1


def test_table1_decode_rates(benchmark, record_result):
    rows = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    record_result("table1", format_table1(rows))
    # Reproduction checks: Scout beats Linux on every clip, the ordering
    # across clips matches, and each cell is within 20% of the paper.
    for row in rows:
        assert row.scout_fps > row.linux_fps, row
        assert abs(row.scout_fps - row.paper_scout_fps) \
            <= 0.20 * row.paper_scout_fps, row
        assert abs(row.linux_fps - row.paper_linux_fps) \
            <= 0.20 * row.paper_linux_fps, row
    ordering = sorted(rows, key=lambda r: r.scout_fps)
    paper_ordering = sorted(rows, key=lambda r: PAPER_TABLE1[r.clip][0])
    assert [r.clip for r in ordering] == [r.clip for r in paper_ordering]
