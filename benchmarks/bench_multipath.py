"""Multipath acceptance benchmarks: warm pools and load-aware groups.

Two claims gate the multipath subsystem:

* **pool** — acquiring a warm path from a :class:`PathPool` must be at
  least 5x faster than the four-phase cold ``path_create`` it replaces
  (the pool's whole point is amortizing creation for churny workloads);
* **group** — a 4-member ``least_loaded`` path group must sustain at
  least 2x the delivered throughput of a single path under the same
  offered load, with the drop ledger reconciling *exactly*:
  ``offered == delivered + dropped``, every drop categorized.

Results land in ``benchmarks/results/BENCH_multipath.json`` (sections
``pool`` and ``group``), uploaded by CI's bench-smoke job.
"""

import time

from repro.core import Attrs, FlowCache, Msg, PA_NET_PARTICIPANTS, classify
from repro.core.path_create import path_create, path_delete
from repro.core.stage import BWD
from repro.experiments.micro import Fig7Stack, REMOTE_IP
from repro.multipath import PathGroup, PathPool
from repro.net.common import PA_LOCAL_PORT

PORT = 6100

#: Acceptance floors (ISSUE acceptance criteria).
MIN_POOL_SPEEDUP = 5.0
MIN_GROUP_THROUGHPUT_RATIO = 2.0

COLD_LOOPS = 200

#: Offered load per round: three times a single path's 32-slot input
#: queue, so one path saturates while a 4-member group (128 slots,
#: load-balanced) absorbs the whole burst.
BURST = 96
ROUNDS = 20


def _conn_attrs() -> Attrs:
    return Attrs({PA_NET_PARTICIPANTS: (REMOTE_IP, 7000),
                  PA_LOCAL_PORT: PORT})


def test_pooled_acquire_vs_cold_create(benchmark, record_multipath):
    """A warm acquire+release cycle against the cold create+delete cycle
    it replaces."""
    stack = Fig7Stack()

    start = time.perf_counter()
    for _ in range(COLD_LOOPS):
        path_delete(path_create(stack.test, _conn_attrs()))
    cold_us = (time.perf_counter() - start) / COLD_LOOPS * 1e6

    pool = PathPool(stack.test)
    pool.prewarm(_conn_attrs(), count=1)
    warm_attrs = _conn_attrs()

    def churn():
        path = pool.acquire(warm_attrs)
        pool.release(path)

    benchmark(churn)
    warm_us = benchmark.stats.stats.mean * 1e6
    speedup = cold_us / warm_us
    record_multipath("pool", {
        "cold_create_us": round(cold_us, 4),
        "pooled_acquire_us": round(warm_us, 4),
        "speedup": round(speedup, 2),
        "cold_loops": COLD_LOOPS,
        "pool_hits": pool.hits,
        "pool_misses": pool.misses,
    })
    assert pool.misses == 0  # every cycle was a warm hit
    assert speedup >= MIN_POOL_SPEEDUP, (
        f"pooled acquisition must be >= {MIN_POOL_SPEEDUP}x faster than "
        f"cold path_create (got {speedup:.2f}x: cold {cold_us:.2f}us, "
        f"warm {warm_us:.2f}us)")


def _offer_and_drain(stack, members, cache, rounds=ROUNDS, burst=BURST):
    """Drive *burst* classified packets per round at the port, then let
    each path drain its input queue once per round (the service rate a
    saturated consumer sustains).  Returns (offered, delivered)."""
    offered = delivered = 0
    for _ in range(rounds):
        for _ in range(burst):
            msg = Msg(stack.udp_frame(PORT))
            offered += 1
            path = classify(stack.eth, msg, cache=cache)
            if path is None:
                raise AssertionError("classification must never miss here")
            if not path.input_queue(BWD).try_enqueue(msg):
                path.note_drop(msg, "path input queue full", "inq_overflow")
        for path in members:
            queue = path.input_queue(BWD)
            while queue.try_dequeue() is not None:
                delivered += 1
    return offered, delivered


def _dropped(members) -> int:
    return sum(p.stats.drops for p in members)


def test_group_throughput_vs_single_path(record_multipath):
    """Same offered load, same per-path queue capacity: the group must
    deliver >= 2x what the single path can, and both ledgers must
    reconcile exactly."""
    single_stack = Fig7Stack()
    single = single_stack.create_udp_path(local_port=PORT)
    offered_s, delivered_s = _offer_and_drain(
        single_stack, [single], cache=FlowCache(capacity=128))
    dropped_s = _dropped([single])

    group_stack = Fig7Stack()
    group = PathGroup("least_loaded", name="bench")
    members = [group.add(group_stack.create_udp_path(PORT))
               for _ in range(4)]
    offered_g, delivered_g = _offer_and_drain(
        group_stack, members, cache=FlowCache(capacity=128))
    dropped_g = _dropped(members)

    # Exact drop-ledger reconciliation: nothing vanished uncounted.
    assert offered_s == delivered_s + dropped_s
    assert offered_g == delivered_g + dropped_g
    for path in [single] + members:
        assert path.stats.drops == sum(path.stats.drop_reasons.values())

    ratio = delivered_g / max(delivered_s, 1)
    record_multipath("group", {
        "members": len(members),
        "policy": "least_loaded",
        "rounds": ROUNDS,
        "burst": BURST,
        "offered": offered_g,
        "single_delivered": delivered_s,
        "single_dropped": dropped_s,
        "group_delivered": delivered_g,
        "group_dropped": dropped_g,
        "throughput_ratio": round(ratio, 2),
        "group_dispatches": group.dispatches,
    })
    assert dropped_s > 0  # the single path really was overloaded
    assert ratio >= MIN_GROUP_THROUGHPUT_RATIO, (
        f"a 4-member least_loaded group must sustain >= "
        f"{MIN_GROUP_THROUGHPUT_RATIO}x a single path's delivered "
        f"throughput (got {ratio:.2f}x: single {delivered_s}, "
        f"group {delivered_g})")
