"""Regenerates E6 (Section 4.4): frame-size/CPU correlation + admission."""

from repro.experiments import admission_scenario, fit_model, format_admission


def test_admission_model_and_scenario(benchmark, record_result):
    model, samples = benchmark.pedantic(fit_model, rounds=1, iterations=1)
    correlation = model.correlation()
    decisions = admission_scenario(model)
    record_result("admission",
                  format_admission(samples, correlation, decisions))
    # "A good correlation between the average size of a frame (in bits)
    # and the average amount of CPU time it takes to decode a frame."
    assert correlation > 0.95
    # The fitted bits+pixels model tracks the measured cost per clip.
    from repro.mpeg import clip_by_name

    for sample in samples:
        pixels = clip_by_name(sample.clip).pixels
        predicted = model.predict_frame_us(sample.avg_frame_bits, pixels)
        assert abs(predicted - sample.measured_frame_us) \
            <= 0.10 * sample.measured_frame_us, sample
    # Scenario shape: Neptune + 4 Canyons fit; Flower at full rate does
    # not but a reduced-quality fallback is found and admitted.
    by_request = {}
    for d in decisions:
        by_request.setdefault(d.request, d)  # keep first occurrence
    assert by_request["Neptune@30fps"].admitted
    assert all(by_request[f"Canyon@10fps #{i}"].admitted
               for i in range(1, 5))
    flower = by_request["Flower@30fps"]
    assert not flower.admitted
    assert flower.suggested_skip is not None
    fallback = by_request[f"Flower@30fps (1/{flower.suggested_skip})"]
    assert fallback.admitted
    # The committed utilization never exceeds the headroom.
    assert all(d.committed_after <= 0.95 + 1e-9 for d in decisions)
