"""Regenerates E3 (Section 4.3): EDF vs round-robin missed deadlines for
8 Canyon movies @10fps + 1 Neptune movie @30fps, across output queue
sizes (the paper's point: RR fails when the queues are large)."""

from repro.experiments import format_edf_rr, run_queue_sweep


def test_edf_vs_rr_missed_deadlines(benchmark, record_result):
    results = benchmark.pedantic(run_queue_sweep, rounds=1, iterations=1,
                                 kwargs={"queue_sizes": [16, 128]})
    record_result("edf_vs_rr", format_edf_rr(results))
    by_key = {(r.policy, r.outq_frames): r for r in results}
    # The paper's headline: EDF misses not a single deadline.
    for (policy, _outq), r in by_key.items():
        if policy == "edf":
            assert r.neptune_missed == 0, r
    # RR with large queues misses a large number of deadlines...
    rr_large = by_key[("rr", 128)]
    assert rr_large.neptune_missed > 50, rr_large
    # ...and the damage grows with queue size (the stated mechanism).
    rr_small = by_key[("rr", 16)]
    assert rr_large.neptune_missed > rr_small.neptune_missed, (rr_small,
                                                               rr_large)
