"""Regenerates E4 (Section 3.6): path creation cost, path/stage sizes,
and classification cost — measured on the real implementation.

The wall-clock numbers are Python on modern hardware, so they are not
comparable to the Alpha's 200us/5us in absolute terms; the structural
numbers (six stages, ~300-byte path, ~150-byte stages) reproduce the
paper directly via modeled C footprints.
"""

from repro.core import Msg, classify, path_delete
from repro.experiments import Fig7Stack, format_micro, measure_structure
from repro.experiments.micro import (
    PAPER_PATH_BYTES,
    PAPER_STAGE_BYTES,
    PAPER_UDP_PATH_STAGES,
)


def test_path_create_cost(benchmark, record_result):
    stack = Fig7Stack()

    def create_and_destroy():
        path = stack.create_udp_path()
        path_delete(path)

    benchmark(create_and_destroy)
    report = measure_structure()
    create_us = benchmark.stats.stats.mean * 1e6
    # Time classification inline for the combined report (the dedicated
    # pytest-benchmark case below gives it full statistical treatment).
    import time

    path = stack.create_udp_path(local_port=6100)
    frame = stack.udp_frame(6100)
    loops = 2000
    start = time.perf_counter()
    for _ in range(loops):
        classify(stack.eth, Msg(frame))
    classify_us = (time.perf_counter() - start) / loops * 1e6
    path_delete(path)
    record_result("micro_path_create",
                  format_micro(report, create_us=create_us,
                               classify_us=classify_us))
    assert report.udp_path_stages == PAPER_UDP_PATH_STAGES
    assert abs(report.path_modeled_bytes - PAPER_PATH_BYTES) <= 60
    assert abs(report.per_stage_modeled_bytes - PAPER_STAGE_BYTES) <= 60


def test_classify_udp_packet_cost(benchmark):
    stack = Fig7Stack()
    path = stack.create_udp_path(local_port=6100)
    frame = stack.udp_frame(6100)

    def classify_once():
        msg = Msg(frame)
        found = classify(stack.eth, msg)
        assert found is path

    benchmark(classify_once)


def test_demux_chain_scales_with_depth(benchmark):
    """Classification is a handful of dictionary probes; adding the video
    stack (two more routers) must not blow it up."""
    stack = Fig7Stack()
    stack.create_udp_path(local_port=6100)
    frame = stack.udp_frame(6100, payload=b"y" * 1400)

    def classify_big_packet():
        classify(stack.eth, Msg(frame))

    benchmark(classify_big_packet)


def test_message_header_pushpop_cost(benchmark):
    """The per-packet hot path: push three headers, pop three headers."""
    payload = b"z" * 1400

    def roundtrip():
        msg = Msg(payload)
        msg.push(b"U" * 8)
        msg.push(b"I" * 20)
        msg.push(b"E" * 14)
        msg.pop(14)
        msg.pop(20)
        msg.pop(8)

    benchmark(roundtrip)


def test_path_queue_cost(benchmark):
    from repro.core import PathQueue

    queue = PathQueue(maxlen=64)

    def enqueue_dequeue():
        queue.try_enqueue("item")
        queue.dequeue()

    benchmark(enqueue_dequeue)


def test_engine_event_dispatch_cost(benchmark):
    from repro.sim import Engine

    def thousand_events():
        engine = Engine()
        for i in range(1000):
            engine.schedule(i, lambda: None)
        engine.run()

    benchmark(thousand_events)
