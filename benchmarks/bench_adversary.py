"""Adversarial stability acceptance benchmark (DESIGN.md §14).

The claim under test: for every worst-case traffic strategy the
``(rho, w)``-bounded adversary knows, under both scheduler
configurations, the hardened receive pipeline stays *stable* — queue
depth never exceeds its proven bound, no admitted flow starves within
the horizon, and the drop ledger reconciles every injected message
exactly once against the metrics registry.

This is not a throughput race; the artifact is the verdict itself.  Each
strategy x scheduler cell records the machine-checked evidence (injected
/ delivered / shed / overflowed counts, the supremum queue depth against
its bound, starvation worst gap, watchdog behaviour, the determinism
digest) into ``benchmarks/results/BENCH_adversary.json`` for CI to
upload; a single violated verdict fails the benchmark.
"""

import pytest

from repro.experiments import format_adversary, run_adversary_matrix
from repro.faults import STRATEGIES

SEED = 0

#: Overload point: rho * service = 0.04 * 40 = 1.6 -- 60% more work than
#: the consumer can drain, so the shedder and verdict engine are
#: genuinely exercised (an under-committed adversary proves nothing).
RHO_PER_US = 0.04
W = 24


class TestAdversaryStability:

    @pytest.fixture(scope="class")
    def matrix(self):
        return run_adversary_matrix(seed=SEED, rho_per_us=RHO_PER_US, w=W)

    def test_full_matrix_holds(self, matrix, record_result, record_adversary):
        assert len(matrix) == 2 * len(STRATEGIES)
        record_result("adversary_matrix", format_adversary(matrix))
        for result in matrix:
            section = f"{result.strategy}.{result.scheduler}"
            record_adversary(section, {
                "seed": result.seed,
                "members": result.members,
                "rho_per_us": RHO_PER_US,
                "w": W,
                "injected": result.injected,
                "delivered": result.delivered,
                "shed": result.shed,
                "overflowed": result.overflowed,
                "end_of_run": result.end_of_run,
                "max_queue_depth": result.max_queue_depth,
                "depth_bound": result.depth_bound,
                "starved_flows": result.verdict.starved_flows,
                "worst_progress_gap_us": result.verdict.worst_progress_gap_us,
                "horizon_us": result.verdict.horizon_us,
                "leaked": result.verdict.leaked,
                "double_counted": result.verdict.double_counted,
                "metrics_reconciled": result.metrics_reconciled,
                "watchdog_rebuilds": result.watchdog_rebuilds,
                "watchdog_deferrals": result.watchdog_deferrals,
                "policy_switches": result.policy_switches,
                "digest": result.digest,
                "ok": result.ok,
            })
            assert result.ok, result.verdict.render()

    def test_adversary_is_actually_adversarial(self, matrix):
        """The verdicts must be earned: the offered load overcommits the
        consumer, so a meaningful share of traffic is shed or dropped
        and the depth bound is approached, not idled under."""
        for result in matrix:
            assert result.injected > 200
            # Either admission had to shed, or the burst visibly piled
            # up (queue_storm drains between phase-locked bursts, so it
            # pressures depth without tripping the shedder).
            assert (result.shed + result.overflowed > 0
                    or result.max_queue_depth >= W // 2), result.strategy
        assert any(r.shed > 0 for r in matrix)
        assert any(r.max_queue_depth >= r.depth_bound // 2 for r in matrix)

    def test_watchdog_never_storms(self, matrix):
        """Overload is discriminated from stalls: adversarial phase must
        not provoke a single rebuild of a healthy path."""
        for result in matrix:
            assert result.watchdog_rebuilds == 0, result.strategy
