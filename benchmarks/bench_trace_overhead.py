"""Observability overhead: disabled tracing must be free, enabled bounded.

Instrumentation is a per-path opt-in (``PA_TRACE`` at create time), so
the cost structure has three tiers, measured here on the same hot-path
operations ``bench_path_micro.py`` times:

* **baseline** — an untraced path in a process with no observatory at
  all (the seed's configuration);
* **disabled** — an untraced path coexisting with an *armed* observatory
  that is actively tracing a different path.  The entire added cost is
  one ``observer is None`` attribute test per hook site; the assertion
  pins it at <= 5% of baseline;
* **enabled** — the traced path itself, paying for real spans and
  metric updates (reported, not bounded: tracing is opt-in precisely
  because it is allowed to cost).

Interleaved min-of-N timing keeps the baseline/disabled comparison fair
on a noisy machine: the minimum of many short repeats estimates the
uncontended cost of each mode.
"""

from __future__ import annotations

import time

from repro.core import Msg, classify, path_delete
from repro.core.queues import PathQueue
from repro.core.stage import BWD
from repro.experiments import Fig7Stack
from repro.observe import Observatory

#: Disabled-mode ceiling from the issue: tracing that is off may cost at
#: most 5% on the micro figures.
DISABLED_OVERHEAD_CEILING = 1.05

LOOPS = 300
REPEATS = 25


def _min_us(fn, loops: int = LOOPS, repeats: int = REPEATS) -> float:
    """Minimum per-op microseconds over *repeats* batches of *loops*."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(loops):
            fn()
        best = min(best, time.perf_counter() - start)
    return best / loops * 1e6


def _interleaved(fn_a, fn_b, loops: int = LOOPS, repeats: int = REPEATS):
    """Time two ops alternately so drift hits both modes equally."""
    best_a = best_b = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(loops):
            fn_a()
        best_a = min(best_a, time.perf_counter() - start)
        start = time.perf_counter()
        for _ in range(loops):
            fn_b()
        best_b = min(best_b, time.perf_counter() - start)
    return best_a / loops * 1e6, best_b / loops * 1e6


class _Rig:
    """One Fig7 stack + one UDP path, optionally under an observatory."""

    def __init__(self, traced: bool):
        self.stack = Fig7Stack()
        self.observatory = Observatory(lambda: 0.0) if traced else None
        self.path = self.stack.create_udp_path(local_port=6100)
        if traced:
            self.observatory.instrument(self.path)
        self.frame = self.stack.udp_frame(6100)
        self.outq = self.path.output_queue(BWD)

    def classify_op(self):
        classify(self.stack.eth, Msg(self.frame))

    def deliver_op(self):
        self.path.deliver(Msg(self.frame), BWD)
        self.outq.dequeue()
        self.stack.test.received.clear()

    def close(self):
        path_delete(self.path)


def test_disabled_tracing_is_free(record_result):
    """An armed observatory must not slow paths that did not opt in."""
    baseline = _Rig(traced=False)
    world = _Rig(traced=True)  # arms the observatory on its own path
    untraced = world.stack.create_udp_path(local_port=6200)
    untraced_frame = world.stack.udp_frame(6200)
    outq = untraced.output_queue(BWD)

    def disabled_deliver():
        untraced.deliver(Msg(untraced_frame), BWD)
        outq.dequeue()
        world.stack.test.received.clear()

    assert untraced.observer is None  # it really is the disabled mode
    base_us, disabled_us = _interleaved(baseline.deliver_op,
                                        disabled_deliver)
    ratio = disabled_us / base_us
    lines = [
        "Tracing overhead: disabled mode (untraced path, armed observatory)",
        f"  baseline deliver: {base_us:8.2f} us/op",
        f"  disabled deliver: {disabled_us:8.2f} us/op",
        f"  ratio:            {ratio:8.3f}  (ceiling {DISABLED_OVERHEAD_CEILING})",
    ]
    record_result("trace_overhead_disabled", "\n".join(lines))
    path_delete(untraced)
    world.close()
    baseline.close()
    assert ratio <= DISABLED_OVERHEAD_CEILING, (
        f"disabled tracing costs {ratio:.3f}x baseline "
        f"(allowed {DISABLED_OVERHEAD_CEILING}x)")


def test_enabled_tracing_overhead_report(record_result):
    """Report (don't bound) what a traced path pays per operation."""
    baseline = _Rig(traced=False)
    traced = _Rig(traced=True)

    rows = []
    for label, base_fn, traced_fn in (
            ("classify", baseline.classify_op, traced.classify_op),
            ("deliver", baseline.deliver_op, traced.deliver_op)):
        base_us, traced_us = _interleaved(base_fn, traced_fn)
        rows.append((label, base_us, traced_us, traced_us / base_us))

    # Queue ops: a bare queue vs one carrying the observer's listeners.
    bare = PathQueue(maxlen=64)
    hooked = traced.path.input_queue(BWD)

    def bare_op():
        bare.try_enqueue("item")
        bare.dequeue()

    def hooked_op():
        hooked.try_enqueue(Msg(b"x"))
        hooked.dequeue()

    base_us, traced_us = _interleaved(bare_op, hooked_op)
    rows.append(("queue enq+deq", base_us, traced_us, traced_us / base_us))

    lines = [
        "Tracing overhead: enabled mode (traced path vs untraced baseline)",
        f"  {'operation':<16}{'base us':>10}{'traced us':>12}{'ratio':>8}",
    ]
    for label, base_us, traced_us, ratio in rows:
        lines.append(f"  {label:<16}{base_us:>10.2f}{traced_us:>12.2f}"
                     f"{ratio:>8.2f}")
    record_result("trace_overhead_enabled", "\n".join(lines))
    traced.close()
    baseline.close()
    # Sanity: enabled tracing worked (spans actually got recorded).
    assert len(traced.observatory.recorder) > 0
