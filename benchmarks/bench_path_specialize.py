"""Warm-UDP throughput: exec-generated fused functions vs the compiled
chain walk (DESIGN.md §15).

The workload is the specialized tier's home turf — validated runs over
the Figure 7 receive chain, exactly what a flow-cache hit hands the path
in the kernel.  Both arms run the identical workload shape (pre-built
stamped frames, batched delivery, output queue drained per run) so the
measured gap is the dispatch structure alone: one generated straight-line
body versus per-stage vectorized calls.

The gate is the PR's acceptance bar: the specialized tier must be at
least 2x the compiled tier on this workload, with the books — delivered
bytes, drop ledger, rx_validated counters — reconciling exactly.
"""

import time

from repro.core import Attrs, Msg, path_create
from repro.core.attributes import PA_NET_PARTICIPANTS
from repro.core.flowcache import VALIDATED_STAMPS
from repro.core.stage import BWD
from repro.experiments.micro import Fig7Stack, REMOTE_IP
from repro.net.common import PA_LOCAL_PORT

BATCH = 32
LOOPS = 400
PAYLOAD = b"x" * 64


def _build(specialize, port):
    stack = Fig7Stack()
    path = path_create(stack.test,
                       Attrs({PA_NET_PARTICIPANTS: (REMOTE_IP, 7000),
                              PA_LOCAL_PORT: port}),
                       specialize=specialize)
    return stack, path


def _make_runs(stack, port, loops, batch):
    runs = []
    for _ in range(loops):
        run = []
        for _ in range(batch):
            msg = Msg(stack.udp_frame(port, payload=PAYLOAD))
            for stamp in VALIDATED_STAMPS:
                msg.meta[stamp] = True
            run.append(msg)
        runs.append(run)
    return runs


def _time_arm(specialize):
    stack, path = _build(specialize, 6100)
    outq = path.output_queue(BWD)
    # Interpreter warm-up (and, for the specialized arm, generation).
    for run in _make_runs(stack, 6100, 3, BATCH):
        path.deliver_batch(run, BWD)
        outq.dequeue_batch()
    stack.test.received.clear()
    warmup_specialized = path.specialized_msgs
    runs = _make_runs(stack, 6100, LOOPS, BATCH)
    start = time.perf_counter()
    for run in runs:
        path.deliver_batch(run, BWD)
        outq.dequeue_batch()
    elapsed = time.perf_counter() - start
    per_msg_us = elapsed / (LOOPS * BATCH) * 1e6
    books = {
        "delivered": len(stack.test.received),
        "first": stack.test.received[0].to_bytes(),
        "last": stack.test.received[-1].to_bytes(),
        "drops": path.stats.drops,
        "drop_reasons": dict(path.stats.drop_reasons),
        "sink_overflows": stack.test.sink_overflows,
        "rx_validated": (stack.eth.rx_validated, stack.ip.rx_validated,
                         path.stage_of("UDP").rx_validated),
        "cycles": path.stats.cycles,
    }
    return per_msg_us, books, path.specialized_msgs - warmup_specialized, path


def test_warm_udp_specialized_vs_compiled(record_fastpath):
    compiled_us, compiled_books, _, _ = _time_arm(specialize=False)
    specialized_us, specialized_books, specialized_msgs, path = \
        _time_arm(specialize=True)

    # Reconciliation first: a fast wrong answer is not a result.  Both
    # arms saw the identical byte stream, so every book must agree.
    assert specialized_books == compiled_books
    assert specialized_books["delivered"] == LOOPS * BATCH
    assert specialized_books["drops"] == 0
    # ...and the specialized arm really ran generated code, start to end.
    assert specialized_msgs == LOOPS * BATCH
    spec_fn = path._specialized[BWD]
    speedup = compiled_us / specialized_us

    record_fastpath("specialize", {
        "compiled_us": round(compiled_us, 4),
        "specialized_us": round(specialized_us, 4),
        "speedup": round(speedup, 2),
        "batch": BATCH,
        "loops": LOOPS,
        "fused_stages": spec_fn.__specialized_stages__,
        "delivered": specialized_books["delivered"],
    })
    # The acceptance gate: fused straight-line code must at least double
    # warm-UDP batched throughput over the per-stage vectorized walk.
    assert speedup >= 2.0, (
        f"specialized tier only {speedup:.2f}x over compiled "
        f"({specialized_us:.3f}us vs {compiled_us:.3f}us per message)")


def test_specialized_scalar_deliver_not_slower(record_fastpath):
    """Batch=1 rides the same generated function; it must never lose to
    the compiled scalar walk (no gate beyond parity-with-slack — scalar
    dispatch overhead dominates at this size)."""

    def time_scalar(specialize):
        stack, path = _build(specialize, 6100)
        outq = path.output_queue(BWD)
        for run in _make_runs(stack, 6100, 3, 1):
            path.deliver(run[0], BWD)
            outq.dequeue_batch()
        stack.test.received.clear()
        runs = _make_runs(stack, 6100, LOOPS, 1)
        start = time.perf_counter()
        for run in runs:
            path.deliver(run[0], BWD)
            outq.dequeue_batch()
        return (time.perf_counter() - start) / LOOPS * 1e6

    compiled_us = time_scalar(False)
    specialized_us = time_scalar(True)
    record_fastpath("specialize_scalar", {
        "compiled_us": round(compiled_us, 4),
        "specialized_us": round(specialized_us, 4),
        "speedup": round(compiled_us / specialized_us, 2),
        "loops": LOOPS,
    })
    assert specialized_us <= 1.5 * compiled_us
